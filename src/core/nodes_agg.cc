// LocalAggNode, ShuffleAggNode, SortLimitNode.
#include "core/nodes.h"

#include <numeric>

#include "common/error.h"
#include "common/worker_pool.h"

namespace wake {

namespace {
// Rows per parallel local-aggregation chunk. Chunk edges snap to group
// boundaries, so the decomposition depends only on the data — never on
// the worker count — and chunk-order merges reproduce the serial state.
constexpr size_t kLocalAggChunkRows = 32 * 1024;
}  // namespace

// ---------------------------------------------------------------------------
// LocalAggNode
// ---------------------------------------------------------------------------

LocalAggNode::LocalAggNode(const PlanNode& plan, const Schema& input_schema,
                           const Schema& output_schema, NodeOptions options)
    : ExecNode(plan.label.empty() ? "agg(local)" : plan.label),
      group_by_(plan.group_by),
      aggs_(plan.aggs),
      input_schema_(input_schema),
      output_schema_(output_schema),
      cluster_key_(input_schema.clustering_key()),
      options_(options),
      pending_(input_schema) {
  CheckArg(!cluster_key_.empty(), "local aggregation needs a clustering key");
}

size_t LocalAggNode::BufferedBytes() const { return pending_.ByteSize(); }

void LocalAggNode::Process(size_t, const Message& msg) {
  pending_.Append(*msg.frame);
  last_progress_ = msg.progress;
  size_t n = pending_.num_rows();
  if (n == 0) {
    Emit(Message{std::make_shared<DataFrame>(output_schema_), msg.progress,
                 0, false, nullptr});
    return;
  }
  size_t ready = n;
  if (msg.progress < 1.0) {
    // Hold back rows sharing the last clustering key: that key's group may
    // continue in the next partial (robust even if the storage layer did
    // not align partition boundaries to key boundaries).
    std::vector<size_t> cluster_cols = pending_.ColumnIndices(cluster_key_);
    while (ready > 0) {
      bool same = true;
      for (size_t c : cluster_cols) {
        if (pending_.column(c).CompareRows(ready - 1, pending_.column(c),
                                           n - 1) != 0) {
          same = false;
          break;
        }
      }
      if (!same) break;
      --ready;
    }
  }
  DataFrame complete = pending_.Slice(0, ready);
  pending_ = pending_.Slice(ready, n);
  EmitComplete(complete, msg.progress);
}

void LocalAggNode::Finish() {
  if (pending_.num_rows() == 0) return;
  DataFrame complete = std::move(pending_);
  pending_ = DataFrame(input_schema_);
  // A drain-stopped stream ends at the progress it reached; claiming 1.0
  // here would launder a prefix into an exact answer downstream.
  EmitComplete(complete, drain_stopped() && last_progress_ < 1.0
                             ? last_progress_
                             : 1.0);
}

void LocalAggNode::EmitComplete(const DataFrame& complete, double progress) {
  // Groups are complete (clustering-key order guarantees they never recur),
  // so finalize exactly; output rows stay in clustering-key order.
  GroupedAggState state(group_by_, aggs_, input_schema_, output_schema_);
  WorkerPool* pool = options_.pool;
  const size_t n = complete.num_rows();
  if (pool != nullptr && pool->workers() > 1 && !options_.with_ci &&
      n >= 2 * kLocalAggChunkRows) {
    // Parallel via the GroupedAggState::Merge() contract: chunk edges
    // snap forward to the next group boundary, so every group lives
    // whole in exactly one chunk (rows in serial order). Per-chunk
    // states consume with global arrival ranks and merge in chunk order
    // — adopted groups keep their accumulators and ranks, so Finalize
    // emits the identical frame at any worker count.
    std::vector<size_t> group_cols = complete.ColumnIndices(group_by_);
    auto same_group = [&](size_t a, size_t b) {
      for (size_t c : group_cols) {
        if (complete.column(c).CompareRows(a, complete.column(c), b) != 0) {
          return false;
        }
      }
      return true;
    };
    std::vector<size_t> edges{0};
    for (size_t s = kLocalAggChunkRows; s < n; s += kLocalAggChunkRows) {
      size_t e = std::max(s, edges.back());
      while (e < n && same_group(e - 1, e)) ++e;
      if (e > edges.back() && e < n) edges.push_back(e);
    }
    edges.push_back(n);
    const size_t chunks = edges.size() - 1;
    std::vector<std::unique_ptr<GroupedAggState>> parts(chunks);
    pool->ParallelShards(chunks, [&](size_t k) {
      auto part = std::make_unique<GroupedAggState>(group_by_, aggs_,
                                                    input_schema_,
                                                    output_schema_);
      DataFrame chunk = complete.Slice(edges[k], edges[k + 1]);
      std::vector<uint64_t> order(chunk.num_rows());
      std::iota(order.begin(), order.end(),
                static_cast<uint64_t>(edges[k]));
      part->Consume(chunk, nullptr, order.data());
      parts[k] = std::move(part);
    });
    for (const auto& part : parts) state.Merge(*part);
  } else {
    state.Consume(complete);
  }
  Message msg;
  msg.frame = std::make_shared<DataFrame>(state.Finalize(AggScaling{}).frame);
  msg.progress = progress;
  Emit(std::move(msg));
}

// ---------------------------------------------------------------------------
// ShuffleAggNode
// ---------------------------------------------------------------------------

ShuffleAggNode::ShuffleAggNode(const PlanNode& plan,
                               const Schema& input_schema,
                               const Schema& output_schema,
                               NodeOptions options)
    : ExecNode(plan.label.empty() ? "agg(shuffle)" : plan.label),
      output_schema_(output_schema),
      options_(options),
      state_(plan.group_by, plan.aggs, input_schema, output_schema) {
  // Morsel parallelism: large partials shard across the pool. CI mode
  // stays serial — variance vectors are indexed per input row and are not
  // routed through the hash partitioning.
  if (!options_.with_ci) state_.EnableSharding(options_.pool);
}

size_t ShuffleAggNode::BufferedBytes() const {
  // Rough: one accumulator set per group.
  return state_.num_groups() * 128;
}

void ShuffleAggNode::Process(size_t, const Message& msg) {
  if (msg.refresh) state_.Reset();
  state_.Consume(*msg.frame, msg.variances.get());
  growth_.Observe(msg.progress, state_.MeanGroupCardinality());
  last_progress_ = msg.progress;
  EmitSnapshot(msg.progress, msg.progress >= 1.0);
}

void ShuffleAggNode::Finish() {
  if (emitted_final_) return;
  if (drain_stopped() && last_progress_ < 1.0) {
    // Budget drain: the input stream closed early, so this snapshot is an
    // estimate over a prefix — keep the growth scaling pinned at the last
    // observed progress instead of reporting raw prefix sums as exact.
    // With no input at all there is no estimate to publish (an empty
    // aggregate claiming progress 1.0 would read as the exact answer);
    // the API layer synthesizes the zero-progress terminal instead.
    if (last_progress_ > 0.0) {
      EmitSnapshot(last_progress_, true, /*keep_scaling=*/true);
    }
    return;
  }
  EmitSnapshot(1.0, true);
}

void ShuffleAggNode::EmitSnapshot(double progress, bool final_snapshot,
                                  bool keep_scaling) {
  AggScaling scaling;
  scaling.enabled = !final_snapshot || keep_scaling;
  scaling.t = progress;
  scaling.w = options_.fixed_growth_w >= 0.0 ? options_.fixed_growth_w
                                             : growth_.w();
  scaling.var_w = growth_.var_w();
  scaling.with_ci = options_.with_ci;
  AggResult res = state_.Finalize(scaling);
  Message msg;
  msg.frame = std::make_shared<DataFrame>(std::move(res.frame));
  msg.progress = progress;
  msg.version = ++version_;
  msg.refresh = true;
  if (options_.with_ci) {
    msg.variances = std::make_shared<VarianceMap>(std::move(res.variances));
  }
  emitted_final_ = final_snapshot;
  Emit(std::move(msg));
}

// ---------------------------------------------------------------------------
// SortLimitNode
// ---------------------------------------------------------------------------

SortLimitNode::SortLimitNode(const PlanNode& plan, const Schema& schema,
                             NodeOptions options)
    : ExecNode(plan.label.empty() ? "sort" : plan.label),
      sort_keys_(plan.sort_keys),
      limit_(plan.limit),
      schema_(schema),
      options_(options),
      content_(schema) {}

size_t SortLimitNode::BufferedBytes() const { return content_.ByteSize(); }

void SortLimitNode::Process(size_t, const Message& msg) {
  // Case 3 (§2.2): order-by consumes its entire input; each state change
  // triggers a full recomputation of the sorted output.
  if (msg.refresh) {
    content_ = *msg.frame;
  } else {
    content_.Append(*msg.frame);
  }
  // Top-k aware and morsel-parallel: per-morsel partial sorts merge
  // k-way under a total comparator, reproducing the stable serial sort
  // at any worker count; with a limit, only the first k rows gather.
  DataFrame sorted =
      content_.Take(content_.SortedIndices(sort_keys_, limit_, options_.pool));
  Message result;
  result.frame = std::make_shared<DataFrame>(std::move(sorted));
  result.progress = msg.progress;
  result.version = ++version_;
  result.refresh = true;
  Emit(std::move(result));
}

}  // namespace wake
