// Wake's operator nodes: the edf state-transformation machinery of §4.3,
// one ExecNode subclass per operator family.
//
//  ReaderNode      reads base-table partitions, emits append partials with
//                  progress t = tuples read / total tuples (§4.4).
//  MapNode         Case 1 projection (per-partial; variance propagation via
//                  first-order Taylor when CI mode is on).
//  FilterNode      Case 1 selection; recomputes per snapshot on refresh
//                  inputs (Case 3 for mutable-attribute predicates).
//  HashJoinNode    right side is the build table; build input is consumed
//                  to EOF before probing (mutable build attributes must
//                  block, §3.3); probe partials stream through.
//  MergeJoinNode   progressive merge join for inputs clustered on the join
//                  keys: the right side accumulates behind a key watermark,
//                  left rows emit as soon as their key range is complete.
//  LocalAggNode    Case 1 aggregation (group keys cover the clustering
//                  key); boundary groups are held back until the next
//                  partial so partition-straddling keys stay correct.
//  ShuffleAggNode  Case 2 aggregation with growth-based inference: merges
//                  partials into intrinsic state, fits the growth model,
//                  emits scaled extrinsic snapshots (§5), optionally with
//                  variance output (§6).
//  SortLimitNode   Case 3: re-sorts the full current content per state.
#ifndef WAKE_CORE_NODES_H_
#define WAKE_CORE_NODES_H_

#include <functional>
#include <memory>

#include "core/agg_state.h"
#include "core/growth.h"
#include "core/join_kernel.h"
#include "exec/exec_node.h"
#include "plan/props.h"
#include "storage/partitioned_table.h"

namespace wake {

/// Shared node configuration.
struct NodeOptions {
  bool with_ci = false;
  /// Ablation knob: when >= 0, shuffle aggregations use this fixed growth
  /// power instead of the fitted one (e.g. 1.0 reproduces naive linear
  /// 1/t scaling — what Wake would do without §5.2's growth model).
  double fixed_growth_w = -1.0;
  /// Worker pool for intra-operator morsel parallelism: large partials
  /// are split into row-range morsels run across the pool (the node
  /// thread participates). Null = serial operator bodies. Results are
  /// deterministic at any worker count — morsel decomposition depends
  /// only on the input, and outputs are stitched in morsel order.
  WorkerPool* pool = nullptr;
};

/// Base-table reader (the paper's read_csv / table-reader node). Streams
/// the table chunk by chunk (partitions for eager tables, row blocks for
/// wakeblock-backed ones). A non-empty `columns` list makes the scan
/// projected: each chunk is narrowed as it is emitted (copying only the
/// selected columns, one chunk in flight at a time) rather than
/// materializing a narrowed copy of the whole table up front. A `filter`
/// lets synopsis-carrying storage skip refuted chunks before decode;
/// skipped rows still advance progress (they contribute no matching
/// rows, so the partial genuinely covers them).
class ReaderNode : public ExecNode {
 public:
  ReaderNode(TablePtr table, NodeOptions options,
             std::vector<std::string> columns = {}, ExprPtr filter = nullptr);
  size_t BufferedBytes() const override { return 0; }

 protected:
  void Process(size_t, const Message&) override {}
  void RunSource() override;

 private:
  TablePtr table_;
  std::vector<std::string> columns_;  // empty = all
  ExprPtr filter_;                    // advisory block pruning; may be null
  Schema narrowed_schema_;            // key-aware (set iff columns_ set)
};

/// Projection (map). Stateless: one output partial per input partial.
class MapNode : public ExecNode {
 public:
  MapNode(const PlanNode& plan, const Schema& input_schema,
          const Schema& output_schema, NodeOptions options);

 protected:
  void Process(size_t port, const Message& msg) override;

 private:
  std::vector<NamedExpr> projections_;
  bool append_input_;
  Schema input_schema_;
  Schema output_schema_;
  NodeOptions options_;
};

/// Selection (filter). Stateless.
class FilterNode : public ExecNode {
 public:
  FilterNode(ExprPtr predicate, const Schema& schema, NodeOptions options);

 protected:
  void Process(size_t port, const Message& msg) override;

 private:
  ExprPtr predicate_;
  Schema schema_;
  NodeOptions options_;
};

/// Hash join; port 0 = probe (left), port 1 = build (right).
class HashJoinNode : public ExecNode {
 public:
  HashJoinNode(const PlanNode& plan, const Schema& left_schema,
               const Schema& right_schema, const Schema& output_schema,
               NodeOptions options);
  size_t BufferedBytes() const override;

 protected:
  void Process(size_t port, const Message& msg) override;
  void OnInputClosed(size_t port) override;

 private:
  void ProbeAndEmit(const Message& msg);

  JoinType join_type_;
  std::vector<std::string> left_keys_;
  Schema output_schema_;
  NodeOptions options_;
  JoinHashTable table_;
  std::vector<Message> pending_probe_;  // buffered until build EOF
  bool build_done_ = false;
};

/// Progressive merge join for key-clustered append inputs; port 0 = left,
/// port 1 = right.
class MergeJoinNode : public ExecNode {
 public:
  MergeJoinNode(const PlanNode& plan, const Schema& left_schema,
                const Schema& right_schema, const Schema& output_schema,
                NodeOptions options);
  size_t BufferedBytes() const override;

 protected:
  void Process(size_t port, const Message& msg) override;
  void OnInputClosed(size_t port) override;

 private:
  void EmitReady();

  JoinType join_type_;
  std::vector<std::string> left_keys_;
  Schema left_schema_;
  Schema output_schema_;
  NodeOptions options_;
  JoinHashTable table_;
  DataFrame left_pending_;
  size_t left_consumed_ = 0;  // emitted prefix of left_pending_
  std::vector<size_t> left_key_cols_;
  std::vector<size_t> right_key_cols_;
  // Watermark: the key of the last right row received (right side arrives
  // clustered, so all keys <= watermark are complete). Held as a one-row
  // frame to reuse CompareRows.
  DataFrame right_watermark_;
  bool right_done_ = false;
  double left_progress_ = 0.0;
  double right_progress_ = 0.0;
  double last_emitted_progress_ = -1.0;
};

/// Case 1 aggregation over clustering-key groups.
class LocalAggNode : public ExecNode {
 public:
  LocalAggNode(const PlanNode& plan, const Schema& input_schema,
               const Schema& output_schema, NodeOptions options);
  size_t BufferedBytes() const override;

 protected:
  void Process(size_t port, const Message& msg) override;
  void Finish() override;

 private:
  void EmitComplete(const DataFrame& complete, double progress);

  std::vector<std::string> group_by_;
  std::vector<AggSpec> aggs_;
  Schema input_schema_;
  Schema output_schema_;
  std::vector<std::string> cluster_key_;
  NodeOptions options_;
  DataFrame pending_;  // rows whose clustering key may continue
  double last_progress_ = 0.0;
};

/// Case 2 aggregation with growth-based inference (§5).
class ShuffleAggNode : public ExecNode {
 public:
  ShuffleAggNode(const PlanNode& plan, const Schema& input_schema,
                 const Schema& output_schema, NodeOptions options);
  size_t BufferedBytes() const override;

  const GrowthModel& growth() const { return growth_; }

 protected:
  void Process(size_t port, const Message& msg) override;
  void Finish() override;

 private:
  /// `keep_scaling` keeps growth-based scaling enabled on a final
  /// snapshot — used when a budget drain truncated the input and the
  /// "final" state is still an estimate at `progress` < 1.
  void EmitSnapshot(double progress, bool final_snapshot,
                    bool keep_scaling = false);

  Schema output_schema_;
  NodeOptions options_;
  GroupedAggState state_;
  GrowthModel growth_;
  uint64_t version_ = 0;
  double last_progress_ = 0.0;
  bool emitted_final_ = false;
};

/// Case 3 sort/limit: recompute per state.
class SortLimitNode : public ExecNode {
 public:
  SortLimitNode(const PlanNode& plan, const Schema& schema,
                NodeOptions options);
  size_t BufferedBytes() const override;

 protected:
  void Process(size_t port, const Message& msg) override;

 private:
  std::vector<SortKey> sort_keys_;
  size_t limit_;
  Schema schema_;
  NodeOptions options_;
  DataFrame content_;  // full current content
  uint64_t version_ = 0;
};

}  // namespace wake

#endif  // WAKE_CORE_NODES_H_
