// wakeblock: wake's native binary columnar table format.
//
// A packed table is a directory of column files split into fixed-size row
// blocks:
//
//   <dir>/<table>/table.meta    CRC'd table metadata (schema, keys, block
//                               list, per-column block offsets)
//   <dir>/<table>/<field>.col   one file per column: a small file header,
//                               an optional dictionary page (string
//                               columns), then one encoded block per row
//                               block
//
// Each block carries a 40-byte header with row-count, null-count, and
// min/max synopses, so a reader holding only the headers can refute a
// scan predicate against a block and skip it without decoding (or even
// reading) its payload — the same partition-pruning idea as tenzir's
// catalog synopses, applied at block granularity. Values are stored with
// cheap, decode-friendly compression (run-length for sorted/low-
// cardinality blocks, frame-of-reference bit-packing for narrow ints, raw
// for everything else), validity as a bit-packed mask, and strings as
// dictionary codes against a per-column dictionary page that is interned
// once into a shared StringDict at open time.
//
// Robustness follows the PR 7 wire-frame rules: every length is validated
// against the real file extent before any allocation, every block body is
// CRC-checked, and malformed input raises wake::Error(kProtocol) — never
// an over-allocation or out-of-bounds read.
#ifndef WAKE_STORAGE_WAKEBLOCK_H_
#define WAKE_STORAGE_WAKEBLOCK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "frame/expr.h"

namespace wake {

class PartitionedTable;
class Catalog;

namespace wakeblock {

/// Nominal rows per block (the writer may extend a block past this so a
/// clustering-key value never straddles two blocks).
constexpr size_t kDefaultBlockRows = 4096;

/// Hard ceiling on rows per block: decode allocations are proportional to
/// a block's row count, so a forged count can never balloon memory past
/// this bound.
constexpr size_t kMaxBlockRows = 1u << 22;

struct WriteOptions {
  size_t block_rows = kDefaultBlockRows;
};

/// Cumulative reader counters (one set per open table; atomically
/// updated, so concurrent queries over one handle just sum).
struct ScanStats {
  size_t blocks_read = 0;
  size_t blocks_skipped = 0;
  size_t rows_read = 0;
  size_t rows_skipped = 0;
};

/// Packs `table` (must be materialized, not wakeblock-backed) into
/// `<dir>/<table.name()>/`. Blocks never cross partition boundaries, so a
/// later eager Read reconstructs the exact partition layout.
void Write(const PartitionedTable& table, const std::string& dir,
           const WriteOptions& options = {});

/// Lazy handle over one packed table: holds the metadata, every block
/// header (synopses), and the interned string dictionaries — but no block
/// payloads. Blocks are decoded on demand by ReadBlock. Thread-safe:
/// reads open their own file streams and stats are atomic.
class BlockTable {
 public:
  /// Opens and fully validates `<dir>/<name>/`: meta CRC, file sizes,
  /// every block header, and the dictionary pages. Throws
  /// wake::Error(kProtocol) on any inconsistency.
  static std::shared_ptr<const BlockTable> Open(const std::string& dir,
                                                const std::string& name);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t total_rows() const { return total_rows_; }
  size_t num_partitions() const { return num_partitions_; }

  size_t num_blocks() const { return blocks_.size(); }
  size_t block_rows(size_t b) const { return blocks_[b].rows; }
  size_t block_partition(size_t b) const { return blocks_[b].partition; }

  /// Decodes block `b` narrowed to `columns` (empty = all, table order).
  /// When `filter` refutes the block via its synopses (min/max, null
  /// counts, dictionary membership), returns nullptr without touching the
  /// payload and counts the block as skipped. Conservative: a predicate
  /// shape the pruner does not understand never skips.
  DataFramePtr ReadBlock(size_t b, const std::vector<std::string>& columns,
                         const ExprPtr& filter = nullptr) const;

  /// True if `filter` refutes block `b` from synopses alone (no I/O).
  bool BlockRefuted(size_t b, const Expr& filter) const;

  ScanStats stats() const;
  void ResetStats() const;

 private:
  struct BlockInfo {
    uint32_t partition = 0;
    uint32_t rows = 0;
  };
  // One parsed block header per (column, block), kept in memory so
  // pruning decisions never touch the files.
  struct BlockHeader {
    uint32_t rows = 0;
    uint8_t encoding = 0;
    uint8_t flags = 0;  // bit 0: min/max synopsis present
    uint32_t null_count = 0;
    uint64_t min_bits = 0;  // int64 or double bit pattern, by column type
    uint64_t max_bits = 0;
    uint32_t validity_len = 0;
    uint32_t payload_len = 0;
    uint32_t crc = 0;
  };
  struct ColumnInfo {
    std::vector<uint64_t> offsets;  // block header offset per block
    std::vector<BlockHeader> headers;
    uint64_t file_size = 0;
    StringDictPtr dict;  // string columns only; immutable once opened
  };

  BlockTable() = default;

  std::string ColumnPath(size_t field) const;
  Column DecodeColumnBlock(size_t field, size_t b) const;
  bool Refuted(const Expr& e, size_t b) const;
  bool CompareRefuted(const Expr& cmp, size_t b) const;

  std::string base_;  // <dir>/<name>
  std::string name_;
  Schema schema_;
  size_t total_rows_ = 0;
  size_t num_partitions_ = 0;
  size_t nominal_block_rows_ = 0;
  std::vector<BlockInfo> blocks_;
  std::vector<ColumnInfo> cols_;  // parallel to schema_.fields()

  mutable std::atomic<uint64_t> blocks_read_{0};
  mutable std::atomic<uint64_t> blocks_skipped_{0};
  mutable std::atomic<uint64_t> rows_read_{0};
  mutable std::atomic<uint64_t> rows_skipped_{0};
};

using BlockTablePtr = std::shared_ptr<const BlockTable>;

/// Eager read: decodes every block (optionally narrowed to `columns`) and
/// reassembles the original partition layout. Inverse of Write.
PartitionedTable Read(const std::string& dir, const std::string& name,
                      const std::vector<std::string>& columns = {});

/// Names of the packed tables under `dir` (subdirectories holding a
/// table.meta), sorted.
std::vector<std::string> ListTables(const std::string& dir);

/// Opens every packed table under `dir` as a lazy wakeblock-backed
/// PartitionedTable and returns them as a catalog.
Catalog OpenCatalog(const std::string& dir);

}  // namespace wakeblock
}  // namespace wake

#endif  // WAKE_STORAGE_WAKEBLOCK_H_
