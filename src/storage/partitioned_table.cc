#include "storage/partitioned_table.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"

namespace wake {

namespace {

// Returns true if rows r-1 and r of `df` agree on every clustering column.
bool SameClusterKey(const DataFrame& df, const std::vector<size_t>& cols,
                    size_t r) {
  for (size_t c : cols) {
    if (df.column(c).CompareRows(r - 1, df.column(c), r) != 0) return false;
  }
  return true;
}

}  // namespace

PartitionedTable PartitionedTable::FromDataFrame(std::string name,
                                                 const DataFrame& df,
                                                 size_t num_partitions) {
  CheckArg(num_partitions > 0, "num_partitions must be positive");
  PartitionedTable table(std::move(name), df.schema());
  size_t n = df.num_rows();
  if (n == 0) {
    table.AddPartition(std::make_shared<DataFrame>(df));
    return table;
  }
  std::vector<size_t> cluster_cols;
  if (!df.schema().clustering_key().empty()) {
    cluster_cols = df.ColumnIndices(df.schema().clustering_key());
  }
  size_t target = (n + num_partitions - 1) / num_partitions;
  size_t begin = 0;
  while (begin < n) {
    size_t end = std::min(begin + target, n);
    // Advance past rows sharing the clustering key with the boundary row so
    // one key never straddles two partitions.
    if (!cluster_cols.empty()) {
      while (end < n && end > 0 && SameClusterKey(df, cluster_cols, end)) {
        ++end;
      }
    }
    table.AddPartition(std::make_shared<DataFrame>(df.Slice(begin, end)));
    begin = end;
  }
  return table;
}

PartitionedTable PartitionedTable::OpenWakeblock(const std::string& dir,
                                                 const std::string& name) {
  wakeblock::BlockTablePtr source = wakeblock::BlockTable::Open(dir, name);
  PartitionedTable table(source->name(), source->schema());
  table.total_rows_ = source->total_rows();
  table.block_source_ = std::move(source);
  return table;
}

PartitionedTable PartitionedTable::FromSegments(std::string name,
                                                Schema schema,
                                                std::vector<TablePtr>
                                                    segments) {
  PartitionedTable table(std::move(name), std::move(schema));
  table.seg_chunk_base_.push_back(0);
  for (auto& seg : segments) {
    CheckArg(seg != nullptr, "null segment");
    CheckArg(!seg->composite(), "nested composite segment");
    table.total_rows_ += seg->total_rows();
    table.seg_chunk_base_.push_back(table.seg_chunk_base_.back() +
                                    seg->num_chunks());
    table.segments_.push_back(std::move(seg));
  }
  return table;
}

size_t PartitionedTable::num_chunks() const {
  if (composite()) return seg_chunk_base_.back();
  return lazy() ? block_source_->num_blocks() : partitions_.size();
}

size_t PartitionedTable::chunk_rows(size_t i) const {
  if (composite()) {
    size_t local = 0;
    return segments_[SegmentOfChunk(i, &local)]->chunk_rows(local);
  }
  return lazy() ? block_source_->block_rows(i) : partitions_[i]->num_rows();
}

size_t PartitionedTable::SegmentOfChunk(size_t i, size_t* local) const {
  CheckArg(i < seg_chunk_base_.back(), "chunk index out of range");
  // upper_bound over the prefix sums: first base strictly above i.
  size_t s = static_cast<size_t>(
      std::upper_bound(seg_chunk_base_.begin(), seg_chunk_base_.end(), i) -
      seg_chunk_base_.begin()) - 1;
  *local = i - seg_chunk_base_[s];
  return s;
}

const DataFramePtr& PartitionedTable::partition(size_t i) const {
  CheckArg(!lazy() && !composite(),
           "partition(): table '" + name_ +
               "' is wakeblock-backed or composite; use the chunk API");
  return partitions_[i];
}

const std::vector<DataFramePtr>& PartitionedTable::partitions() const {
  CheckArg(!lazy() && !composite(),
           "partitions(): table '" + name_ +
               "' is wakeblock-backed or composite; use the chunk API");
  return partitions_;
}

void PartitionedTable::AddPartition(DataFramePtr partition) {
  CheckArg(!lazy() && !composite(),
           "AddPartition on a wakeblock-backed or composite table");
  CheckArg(partition != nullptr, "null partition");
  total_rows_ += partition->num_rows();
  if (schema_.num_fields() == 0) schema_ = partition->schema();
  partitions_.push_back(std::move(partition));
}

DataFramePtr PartitionedTable::ReadChunk(size_t i,
                                         const std::vector<std::string>&
                                             columns,
                                         const ExprPtr& filter) const {
  if (composite()) {
    size_t local = 0;
    size_t s = SegmentOfChunk(i, &local);
    return segments_[s]->ReadChunk(local, columns, filter);
  }
  if (lazy()) return block_source_->ReadBlock(i, columns, filter);
  CheckArg(i < partitions_.size(), "chunk index out of range");
  if (columns.empty()) return partitions_[i];
  // Key-aware narrowing (keys survive only if all their columns do);
  // DataFrame::Select alone would keep stale key metadata.
  auto narrowed = std::make_shared<DataFrame>(partitions_[i]->Select(columns));
  *narrowed->mutable_schema() = schema_.Select(columns);
  return narrowed;
}

TableMetadata PartitionedTable::metadata() const {
  TableMetadata meta;
  meta.name = name_;
  meta.schema = schema_;
  meta.total_rows = total_rows_;
  if (composite()) {
    // One entry per segment.
    for (const auto& seg : segments_) {
      meta.partition_rows.push_back(seg->total_rows());
    }
  } else if (lazy()) {
    // One entry per stored partition: sum of its blocks' row counts.
    meta.partition_rows.assign(block_source_->num_partitions(), 0);
    for (size_t b = 0; b < block_source_->num_blocks(); ++b) {
      meta.partition_rows[block_source_->block_partition(b)] +=
          block_source_->block_rows(b);
    }
  } else {
    for (const auto& p : partitions_) {
      meta.partition_rows.push_back(p->num_rows());
    }
  }
  return meta;
}

PartitionedTable PartitionedTable::Repartition(size_t num_partitions) const {
  return FromDataFrame(name_, Materialize(), num_partitions);
}

PartitionedTable PartitionedTable::ShufflePartitions(uint64_t seed) const {
  CheckArg(!lazy() && !composite(),
           "ShufflePartitions on a wakeblock-backed or composite table");
  PartitionedTable out(name_, schema_);
  std::vector<DataFramePtr> parts = partitions_;
  Rng rng(seed);
  rng.Shuffle(&parts);
  for (auto& p : parts) out.AddPartition(std::move(p));
  return out;
}

DataFrame PartitionedTable::Materialize() const {
  if (lazy() || composite()) return Materialize({}, nullptr);
  DataFrame out(schema_);
  for (const auto& p : partitions_) out.Append(*p);
  return out;
}

DataFrame PartitionedTable::Materialize(
    const std::vector<std::string>& columns) const {
  return Materialize(columns, nullptr);
}

DataFrame PartitionedTable::Materialize(const std::vector<std::string>& columns,
                                        const ExprPtr& filter) const {
  if (composite()) {
    DataFrame out(columns.empty() ? schema_ : schema_.Select(columns));
    for (const auto& seg : segments_) {
      out.Append(seg->Materialize(columns, filter));
    }
    return out;
  }
  if (lazy()) {
    DataFrame out(columns.empty() ? schema_ : schema_.Select(columns));
    bool reserved = false;
    for (size_t b = 0; b < block_source_->num_blocks(); ++b) {
      DataFramePtr block = block_source_->ReadBlock(b, columns, filter);
      if (block == nullptr) continue;
      out.Append(*block);
      if (!reserved) {
        // The first append fixed the columns' encodings; reserving the
        // whole table up front spares the per-block growth reallocations.
        for (size_t c = 0; c < out.num_columns(); ++c) {
          out.mutable_column(c)->Reserve(total_rows_);
        }
        reserved = true;
      }
    }
    return out;
  }
  if (columns.empty()) return Materialize();
  DataFrame out(schema_.Select(columns));
  std::vector<size_t> idx;
  idx.reserve(columns.size());
  for (const auto& c : columns) idx.push_back(schema_.FieldIndex(c));
  for (const auto& p : partitions_) {
    for (size_t c = 0; c < idx.size(); ++c) {
      out.mutable_column(c)->AppendColumn(p->column(idx[c]));
    }
  }
  return out;
}

PartitionedTable PartitionedTable::SelectColumns(
    const std::vector<std::string>& columns) const {
  CheckArg(!lazy() && !composite(),
           "SelectColumns on a wakeblock-backed or composite table");
  PartitionedTable out(name_, schema_.Select(columns));
  for (const auto& p : partitions_) {
    auto narrowed = std::make_shared<DataFrame>(p->Select(columns));
    *narrowed->mutable_schema() = out.schema_;
    out.AddPartition(std::move(narrowed));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Text (.tbl) serialization
// ---------------------------------------------------------------------------

namespace {

char TypeChar(ValueType t) {
  switch (t) {
    case ValueType::kInt64: return 'i';
    case ValueType::kFloat64: return 'f';
    case ValueType::kString: return 's';
    case ValueType::kDate: return 'd';
    case ValueType::kBool: return 'b';
  }
  return '?';
}

ValueType TypeFromChar(char c) {
  switch (c) {
    case 'i': return ValueType::kInt64;
    case 'f': return ValueType::kFloat64;
    case 's': return ValueType::kString;
    case 'd': return ValueType::kDate;
    case 'b': return ValueType::kBool;
  }
  throw Error(std::string("bad type char: ") + c);
}

void WriteMeta(const std::string& path, const PartitionedTable& table) {
  std::ofstream out(path);
  CheckArg(out.good(), "cannot write " + path);
  const Schema& s = table.schema();
  out << table.name() << "\n" << table.num_partitions() << "\n";
  out << s.num_fields() << "\n";
  for (const auto& f : s.fields()) {
    out << f.name << "|" << TypeChar(f.type) << "|" << (f.mutable_attr ? 1 : 0)
        << "\n";
  }
  out << Join(s.primary_key(), ",") << "\n";
  out << Join(s.clustering_key(), ",") << "\n";
}

Schema ReadMeta(const std::string& path, std::string* name,
                size_t* num_partitions) {
  std::ifstream in(path);
  CheckArg(in.good(), "cannot read " + path);
  std::string line;
  std::getline(in, *name);
  std::getline(in, line);
  *num_partitions = std::stoul(line);
  std::getline(in, line);
  size_t num_fields = std::stoul(line);
  Schema schema;
  for (size_t i = 0; i < num_fields; ++i) {
    std::getline(in, line);
    auto parts = Split(line, '|');
    CheckArg(parts.size() == 3, "malformed meta field line: " + line);
    schema.AddField(
        Field(parts[0], TypeFromChar(parts[1][0]), parts[2] == "1"));
  }
  auto read_key = [&]() {
    std::getline(in, line);
    std::vector<std::string> key;
    if (!line.empty()) key = Split(line, ',');
    return key;
  };
  schema.set_primary_key(read_key());
  schema.set_clustering_key(read_key());
  return schema;
}

}  // namespace

void PartitionedTable::WriteTblDir(const std::string& dir) const {
  CheckArg(!lazy() && !composite(),
           "WriteTblDir on a wakeblock-backed or composite table");
  std::filesystem::create_directories(dir);
  WriteMeta(dir + "/" + name_ + ".meta", *this);
  for (size_t i = 0; i < partitions_.size(); ++i) {
    std::string path = dir + "/" + name_ + "." + std::to_string(i) + ".tbl";
    std::ofstream out(path);
    CheckArg(out.good(), "cannot write " + path);
    const DataFrame& df = *partitions_[i];
    for (size_t r = 0; r < df.num_rows(); ++r) {
      for (size_t c = 0; c < df.num_columns(); ++c) {
        if (c > 0) out << '|';
        const Column& col = df.column(c);
        if (col.IsNull(r)) {
          // empty field == null; TPC-H data itself has no nulls.
        } else if (col.type() == ValueType::kFloat64) {
          out << StrFormat("%.9g", col.DoubleAt(r));
        } else if (col.type() == ValueType::kString) {
          out << col.StringAt(r);
        } else if (col.type() == ValueType::kDate) {
          out << FormatDate(col.IntAt(r));
        } else {
          out << col.IntAt(r);
        }
      }
      out << '\n';
    }
  }
}

PartitionedTable PartitionedTable::ReadTblDir(
    const std::string& dir, const std::string& name,
    const std::vector<std::string>& columns) {
  std::string table_name;
  size_t num_partitions = 0;
  Schema full = ReadMeta(dir + "/" + name + ".meta", &table_name,
                         &num_partitions);
  Schema schema = columns.empty() ? full : full.Select(columns);
  // For file field f: slot_of[f] = output column, or npos (skip the field
  // entirely — no number parse, no string intern).
  std::vector<size_t> slot_of = full.ProjectionSlots(schema);
  PartitionedTable table(table_name, schema);
  for (size_t i = 0; i < num_partitions; ++i) {
    std::string path = dir + "/" + name + "." + std::to_string(i) + ".tbl";
    std::ifstream in(path);
    CheckArg(in.good(), "cannot read " + path);
    auto df = std::make_shared<DataFrame>(schema);
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      // Sources build dict-encoded string columns (see frame/column.h).
      if (schema.field(c).type == ValueType::kString) {
        *df->mutable_column(c) = Column::NewDict();
      }
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      auto fields = Split(line, '|');
      CheckArg(fields.size() == full.num_fields(),
               "column count mismatch in " + path);
      for (size_t f = 0; f < fields.size(); ++f) {
        if (slot_of[f] == Schema::npos) continue;
        Column* col = df->mutable_column(slot_of[f]);
        const std::string& text = fields[f];
        if (text.empty() && full.field(f).type != ValueType::kString) {
          col->AppendNull();
          continue;
        }
        switch (full.field(f).type) {
          case ValueType::kInt64:
          case ValueType::kBool:
            col->AppendInt(std::stoll(text));
            break;
          case ValueType::kFloat64:
            col->AppendDouble(std::stod(text));
            break;
          case ValueType::kString:
            col->AppendString(text);
            break;
          case ValueType::kDate:
            col->AppendInt(ParseDate(text));
            break;
        }
      }
    }
    table.AddPartition(std::move(df));
  }
  return table;
}

// ---------------------------------------------------------------------------
// Binary (.wpart) serialization
// ---------------------------------------------------------------------------

namespace {

constexpr uint32_t kWpartMagic = 0x57504B31;  // "WPK1"

template <typename T>
void WritePod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T ReadPod(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  return v;
}

void WriteString(std::ofstream& out, const std::string& s) {
  WritePod<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string ReadString(std::ifstream& in) {
  uint32_t len = ReadPod<uint32_t>(in);
  std::string s(len, '\0');
  in.read(s.data(), len);
  return s;
}

}  // namespace

void PartitionedTable::WriteWpartDir(const std::string& dir) const {
  CheckArg(!lazy() && !composite(),
           "WriteWpartDir on a wakeblock-backed or composite table");
  std::filesystem::create_directories(dir);
  WriteMeta(dir + "/" + name_ + ".meta", *this);
  for (size_t i = 0; i < partitions_.size(); ++i) {
    std::string path = dir + "/" + name_ + "." + std::to_string(i) + ".wpart";
    std::ofstream out(path, std::ios::binary);
    CheckArg(out.good(), "cannot write " + path);
    const DataFrame& df = *partitions_[i];
    WritePod<uint32_t>(out, kWpartMagic);
    WritePod<uint64_t>(out, df.num_rows());
    WritePod<uint32_t>(out, static_cast<uint32_t>(df.num_columns()));
    for (size_t c = 0; c < df.num_columns(); ++c) {
      const Column& col = df.column(c);
      WritePod<uint8_t>(out, static_cast<uint8_t>(col.type()));
      WritePod<uint8_t>(out, col.has_nulls() ? 1 : 0);
      if (col.has_nulls()) {
        // Wpart format keeps one 0/1 byte per row; expand from the bitmap.
        std::vector<uint8_t> bytes(df.num_rows());
        col.validity().ToBoolBytes(bytes.data());
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
      }
      if (col.type() == ValueType::kFloat64) {
        out.write(reinterpret_cast<const char*>(col.doubles().data()),
                  static_cast<std::streamsize>(col.doubles().size() *
                                               sizeof(double)));
      } else if (col.type() == ValueType::kString) {
        // Row-wise via StringAt so both encodings serialize identically.
        for (size_t r = 0; r < df.num_rows(); ++r) {
          WriteString(out, col.StringAt(r));
        }
      } else {
        out.write(reinterpret_cast<const char*>(col.ints().data()),
                  static_cast<std::streamsize>(col.ints().size() *
                                               sizeof(int64_t)));
      }
    }
  }
}

namespace {

// Advances past one serialized string without building it.
void SkipString(std::ifstream& in) {
  uint32_t len = ReadPod<uint32_t>(in);
  in.seekg(len, std::ios::cur);
}

}  // namespace

PartitionedTable PartitionedTable::ReadWpartDir(
    const std::string& dir, const std::string& name,
    const std::vector<std::string>& columns) {
  std::string table_name;
  size_t num_partitions = 0;
  Schema full = ReadMeta(dir + "/" + name + ".meta", &table_name,
                         &num_partitions);
  Schema schema = columns.empty() ? full : full.Select(columns);
  std::vector<size_t> slot_of = full.ProjectionSlots(schema);
  PartitionedTable table(table_name, schema);
  for (size_t i = 0; i < num_partitions; ++i) {
    std::string path = dir + "/" + name + "." + std::to_string(i) + ".wpart";
    std::ifstream in(path, std::ios::binary);
    CheckArg(in.good(), "cannot read " + path);
    CheckArg(ReadPod<uint32_t>(in) == kWpartMagic, "bad magic in " + path);
    uint64_t rows = ReadPod<uint64_t>(in);
    uint32_t cols = ReadPod<uint32_t>(in);
    CheckArg(cols == full.num_fields(), "column count mismatch in " + path);
    auto df = std::make_shared<DataFrame>(schema);
    for (uint32_t f = 0; f < cols; ++f) {
      bool wanted = slot_of[f] != Schema::npos;
      ValueType type = static_cast<ValueType>(ReadPod<uint8_t>(in));
      CheckArg(type == full.field(f).type, "type mismatch in " + path);
      bool has_nulls = ReadPod<uint8_t>(in) != 0;
      std::vector<uint8_t> valid;
      if (has_nulls) {
        if (wanted) {
          valid.resize(rows);
          in.read(reinterpret_cast<char*>(valid.data()),
                  static_cast<std::streamsize>(rows));
        } else {
          in.seekg(static_cast<std::streamoff>(rows), std::ios::cur);
        }
      }
      if (!wanted) {
        // Skip the payload: fixed-width columns seek in one hop, string
        // columns hop record-by-record (lengths are inline).
        if (type == ValueType::kFloat64) {
          in.seekg(static_cast<std::streamoff>(rows * sizeof(double)),
                   std::ios::cur);
        } else if (type == ValueType::kString) {
          for (uint64_t r = 0; r < rows; ++r) SkipString(in);
        } else {
          in.seekg(static_cast<std::streamoff>(rows * sizeof(int64_t)),
                   std::ios::cur);
        }
        continue;
      }
      Column* col = df->mutable_column(slot_of[f]);
      if (type == ValueType::kFloat64) {
        col->mutable_doubles()->resize(rows);
        in.read(reinterpret_cast<char*>(col->mutable_doubles()->data()),
                static_cast<std::streamsize>(rows * sizeof(double)));
      } else if (type == ValueType::kString) {
        *col = Column::NewDict();
        col->Reserve(rows);
        for (uint64_t r = 0; r < rows; ++r) {
          col->AppendString(ReadString(in));
        }
      } else {
        col->mutable_ints()->resize(rows);
        in.read(reinterpret_cast<char*>(col->mutable_ints()->data()),
                static_cast<std::streamsize>(rows * sizeof(int64_t)));
      }
      if (has_nulls) col->set_validity(std::move(valid));
    }
    CheckArg(in.good(), "truncated file " + path);
    table.AddPartition(std::move(df));
  }
  return table;
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

void Catalog::Add(TablePtr table) {
  CheckArg(table != nullptr, "null table");
  CheckArg(dynamic_.count(table->name()) == 0,
           "table '" + table->name() + "' is already registered as dynamic");
  tables_[table->name()] = std::move(table);
}

void Catalog::AddDynamic(std::shared_ptr<DynamicTable> table) {
  CheckArg(table != nullptr, "null table");
  CheckArg(tables_.count(table->name()) == 0,
           "table '" + table->name() + "' is already registered as static");
  dynamic_[table->name()] = std::move(table);
}

const PartitionedTable& Catalog::Get(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    CheckArg(dynamic_.count(name) == 0,
             "table '" + name +
                 "' is dynamic; hold a GetPtr() snapshot instead");
    CheckArg(false, "unknown table '" + name + "'");
  }
  return *it->second;
}

TablePtr Catalog::GetPtr(const std::string& name) const {
  auto it = tables_.find(name);
  if (it != tables_.end()) return it->second;
  auto dyn = dynamic_.find(name);
  CheckArg(dyn != dynamic_.end(), "unknown table '" + name + "'");
  return dyn->second->Snapshot();
}

const Schema& Catalog::GetSchema(const std::string& name) const {
  auto it = tables_.find(name);
  if (it != tables_.end()) return it->second->schema();
  auto dyn = dynamic_.find(name);
  CheckArg(dyn != dynamic_.end(), "unknown table '" + name + "'");
  return dyn->second->schema();
}

std::shared_ptr<DynamicTable> Catalog::GetDynamic(
    const std::string& name) const {
  auto it = dynamic_.find(name);
  return it == dynamic_.end() ? nullptr : it->second;
}

bool Catalog::Has(const std::string& name) const {
  return tables_.count(name) > 0 || dynamic_.count(name) > 0;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : tables_) names.push_back(name);
  for (const auto& [name, _] : dynamic_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Catalog OpenTblCatalog(const std::string& dir) {
  Catalog catalog;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::filesystem::path p = entry.path();
    if (p.extension() != ".meta") continue;
    catalog.Add(std::make_shared<PartitionedTable>(
        PartitionedTable::ReadTblDir(dir, p.stem().string())));
  }
  CheckArg(!ec, "cannot list tbl directory '" + dir + "': " + ec.message());
  CheckArg(!catalog.TableNames().empty(),
           "no <name>.meta tables found in '" + dir + "'");
  return catalog;
}

}  // namespace wake
