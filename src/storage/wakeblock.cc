#include "storage/wakeblock.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "common/wire.h"
#include "storage/partitioned_table.h"

namespace wake {
namespace wakeblock {

namespace {

constexpr uint32_t kMetaMagic = 0x574B4D31;  // "WKM1"
constexpr uint32_t kColMagic = 0x574B4331;   // "WKC1"
constexpr uint8_t kFormatVersion = 1;
constexpr size_t kColFileHeaderBytes = 8;
constexpr size_t kBlockHeaderBytes = 40;
constexpr size_t kMaxColumns = 1024;

// Value payload encodings.
constexpr uint8_t kEncodingRaw = 0;      // rows x 8 bytes, host-endian
constexpr uint8_t kEncodingRle = 1;      // (i64 value, u32 run) pairs
constexpr uint8_t kEncodingBitpack = 2;  // i64 base, u8 width, packed bits
constexpr uint8_t kFlagHasMinMax = 1;

[[noreturn]] void Fail(const std::string& msg) {
  throw Error("wakeblock: " + msg, ErrorCategory::kProtocol);
}

void Check(bool ok, const std::string& msg) {
  if (!ok) Fail(msg);
}

uint64_t F64Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsF64(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

size_t ValidityBytes(size_t rows) { return (rows + 7) / 8; }

// ---------------------------------------------------------------------------
// Bit packing (LSB-first within and across bytes)
// ---------------------------------------------------------------------------

void PackBits(const uint64_t* deltas, size_t n, unsigned width,
              std::string* out) {
  size_t bytes = (n * width + 7) / 8;
  size_t start = out->size();
  out->resize(start + bytes, '\0');
  auto* buf = reinterpret_cast<uint8_t*>(&(*out)[start]);
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = deltas[i];
    size_t bit = i * width;
    size_t byte = bit / 8;
    unsigned shift = static_cast<unsigned>(bit % 8);
    // width <= 63, so the value spans at most 9 bytes.
    buf[byte] |= static_cast<uint8_t>(v << shift);
    unsigned written = 8 - shift;
    while (written < width) {
      ++byte;
      buf[byte] |= static_cast<uint8_t>(v >> written);
      written += 8;
    }
  }
}

uint64_t UnpackBitsAt(const uint8_t* buf, size_t len, size_t i,
                      unsigned width) {
  size_t bit = i * width;
  size_t byte = bit / 8;
  unsigned shift = static_cast<unsigned>(bit % 8);
  // Discard the leading `shift` bits of the first byte immediately: a
  // width-63 value at shift 7 spans 70 bits on disk, which cannot be
  // staged unshifted in a u64 (and `b << 64` would be UB).
  uint64_t v = (byte < len ? buf[byte] : 0) >> shift;
  unsigned got = 8 - shift;
  while (got < width) {
    ++byte;
    uint64_t b = byte < len ? buf[byte] : 0;
    v |= b << got;  // got < width <= 63, so the shift is always defined
    got += 8;
  }
  if (width < 64) v &= (uint64_t{1} << width) - 1;
  return v;
}

// ---------------------------------------------------------------------------
// Value encoding: pick the cheapest of raw / RLE / frame-of-reference
// bit-packing for one block of int64 storage values (doubles pass through
// as bit patterns; dict codes as widened int64).
// ---------------------------------------------------------------------------

struct Encoded {
  uint8_t encoding = kEncodingRaw;
  std::string payload;
};

Encoded EncodeValues(const int64_t* v, size_t n) {
  Encoded out;
  if (n == 0) return out;

  size_t runs = 1;
  int64_t min = v[0], max = v[0];
  for (size_t i = 1; i < n; ++i) {
    if (v[i] != v[i - 1]) ++runs;
    min = std::min(min, v[i]);
    max = std::max(max, v[i]);
  }
  // Range as unsigned so full-span int64 data cannot overflow.
  uint64_t range =
      static_cast<uint64_t>(max) - static_cast<uint64_t>(min);
  unsigned width = 0;
  while (width < 64 && (range >> width) != 0) ++width;

  size_t raw_size = n * 8;
  size_t rle_size = runs * 12;
  size_t pack_size = width < 64 ? 9 + (n * width + 7) / 8 : raw_size + 9;

  if (pack_size <= rle_size && pack_size < raw_size) {
    out.encoding = kEncodingBitpack;
    out.payload.reserve(pack_size);
    wire::WireWriter w;
    w.I64(min);
    w.U8(static_cast<uint8_t>(width));
    out.payload = w.Take();
    std::vector<uint64_t> deltas(n);
    for (size_t i = 0; i < n; ++i) {
      deltas[i] = static_cast<uint64_t>(v[i]) - static_cast<uint64_t>(min);
    }
    PackBits(deltas.data(), n, width, &out.payload);
  } else if (rle_size < raw_size) {
    out.encoding = kEncodingRle;
    wire::WireWriter w;
    size_t i = 0;
    while (i < n) {
      size_t j = i + 1;
      while (j < n && v[j] == v[i]) ++j;
      w.I64(v[i]);
      w.U32(static_cast<uint32_t>(j - i));
      i = j;
    }
    out.payload = w.Take();
  } else {
    out.encoding = kEncodingRaw;
    out.payload.assign(reinterpret_cast<const char*>(v), n * 8);
  }
  return out;
}

// Decodes one block payload into `out` (resized to rows). Bounds: the
// caller validated payload_len against the real file extent, and rows
// against kMaxBlockRows, before this runs.
void DecodeValues(uint8_t encoding, const uint8_t* payload, size_t len,
                  size_t rows, std::vector<int64_t>* out) {
  out->resize(rows);
  switch (encoding) {
    case kEncodingRaw:
      Check(len == rows * 8, "raw payload length mismatch");
      std::memcpy(out->data(), payload, len);
      break;
    case kEncodingRle: {
      wire::WireReader r(payload, len);
      size_t filled = 0;
      while (filled < rows) {
        int64_t value = r.I64();
        uint32_t run = r.U32();
        Check(run > 0 && run <= rows - filled, "RLE run overflows block");
        std::fill(out->begin() + static_cast<ptrdiff_t>(filled),
                  out->begin() + static_cast<ptrdiff_t>(filled + run), value);
        filled += run;
      }
      Check(r.AtEnd(), "trailing bytes after RLE runs");
      break;
    }
    case kEncodingBitpack: {
      wire::WireReader r(payload, len);
      int64_t base = r.I64();
      unsigned width = r.U8();
      Check(width < 64, "bad bit-pack width");
      Check(len == 9 + (rows * width + 7) / 8,
            "bit-pack payload length mismatch");
      const uint8_t* bits = payload + 9;
      size_t bits_len = len - 9;
      for (size_t i = 0; i < rows; ++i) {
        (*out)[i] = base + static_cast<int64_t>(
                               UnpackBitsAt(bits, bits_len, i, width));
      }
      break;
    }
    default:
      Fail("unknown block encoding");
  }
}

// ---------------------------------------------------------------------------
// File helpers
// ---------------------------------------------------------------------------

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  Check(in.good(), "cannot read " + path);
  auto size = in.tellg();
  std::string bytes(static_cast<size_t>(size), '\0');
  in.seekg(0);
  in.read(bytes.data(), size);
  Check(in.good(), "cannot read " + path);
  return bytes;
}

void ReadAt(std::ifstream& in, uint64_t offset, size_t n, void* out,
            const std::string& what) {
  in.seekg(static_cast<std::streamoff>(offset));
  in.read(static_cast<char*>(out), static_cast<std::streamsize>(n));
  Check(in.good(), "truncated read of " + what);
}

// Field names double as file names; writers enforce the safe subset.
bool SafeFieldName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

char TypeChar(ValueType t) { return static_cast<char>(t); }

}  // namespace

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

namespace {

struct BlockSpan {
  uint32_t partition;
  size_t begin;
  size_t rows;
};

// True if rows r-1 and r of `df` agree on every clustering column.
bool SameClusterKey(const DataFrame& df, const std::vector<size_t>& cols,
                    size_t r) {
  for (size_t c : cols) {
    if (df.column(c).CompareRows(r - 1, df.column(c), r) != 0) return false;
  }
  return true;
}

// Splits every partition into blocks of ~block_rows rows. Block
// boundaries respect partition edges and (like FromDataFrame) are pushed
// forward so a clustering-key value never straddles two blocks.
std::vector<BlockSpan> PlanBlocks(const PartitionedTable& table,
                                  size_t block_rows) {
  std::vector<BlockSpan> spans;
  std::vector<size_t> cluster_cols;
  if (table.num_partitions() > 0 && !table.schema().clustering_key().empty()) {
    cluster_cols =
        table.partition(0)->ColumnIndices(table.schema().clustering_key());
  }
  for (size_t p = 0; p < table.num_partitions(); ++p) {
    const DataFrame& df = *table.partition(p);
    size_t n = df.num_rows();
    if (n == 0) {
      // Keep one (empty) block so the partition survives a round trip.
      spans.push_back({static_cast<uint32_t>(p), 0, 0});
      continue;
    }
    size_t begin = 0;
    while (begin < n) {
      size_t end = std::min(begin + block_rows, n);
      if (!cluster_cols.empty()) {
        while (end < n && SameClusterKey(df, cluster_cols, end)) ++end;
      }
      spans.push_back({static_cast<uint32_t>(p), begin, end - begin});
      begin = end;
    }
  }
  return spans;
}

struct BlockSynopsis {
  uint32_t null_count = 0;
  bool has_minmax = false;
  uint64_t min_bits = 0;
  uint64_t max_bits = 0;
};

// One encoded block body: the header fields plus validity+payload bytes.
struct BuiltBlock {
  BlockSynopsis synopsis;
  uint8_t encoding = kEncodingRaw;
  std::string body;  // bit-packed validity then value payload
  uint32_t validity_len = 0;
  uint32_t payload_len = 0;
};

BuiltBlock BuildBlock(const Column& col, ValueType type, size_t begin,
                      size_t rows, const std::vector<int32_t>* codes) {
  BuiltBlock out;
  // Validity first: bit-packed, omitted entirely for all-valid blocks.
  // The column's bitmap shares the on-disk LSB-first layout, so the
  // slice's words serialize directly — popcount for the null count, no
  // per-row loop.
  uint32_t null_count = 0;
  if (col.has_nulls()) {
    ValidityBitmap vslice = col.validity().Slice(begin, begin + rows);
    null_count = static_cast<uint32_t>(vslice.CountNulls());
    out.synopsis.null_count = null_count;
    if (null_count > 0) {
      out.body.assign(ValidityBytes(rows), '\0');
      vslice.ToPackedBytes(reinterpret_cast<uint8_t*>(out.body.data()));
      out.validity_len = static_cast<uint32_t>(out.body.size());
    }
  }

  // Storage values (null slots included so blocks round-trip exactly) and
  // the min/max synopsis over valid rows only.
  std::vector<int64_t> values(rows);
  if (type == ValueType::kString) {
    for (size_t r = 0; r < rows; ++r) values[r] = (*codes)[begin + r];
    // Dict codes carry no value ordering; no min/max synopsis.
  } else if (type == ValueType::kFloat64) {
    const auto& d = col.doubles();
    bool first = true;
    double min = 0, max = 0;
    for (size_t r = 0; r < rows; ++r) {
      values[r] = static_cast<int64_t>(F64Bits(d[begin + r]));
      if (col.IsNull(begin + r)) continue;
      double v = d[begin + r];
      if (first || v < min) min = v;
      if (first || v > max) max = v;
      first = false;
    }
    if (!first) {
      out.synopsis.has_minmax = true;
      out.synopsis.min_bits = F64Bits(min);
      out.synopsis.max_bits = F64Bits(max);
    }
  } else {
    const auto& ints = col.ints();
    bool first = true;
    int64_t min = 0, max = 0;
    for (size_t r = 0; r < rows; ++r) {
      values[r] = ints[begin + r];
      if (col.IsNull(begin + r)) continue;
      int64_t v = ints[begin + r];
      if (first || v < min) min = v;
      if (first || v > max) max = v;
      first = false;
    }
    if (!first) {
      out.synopsis.has_minmax = true;
      out.synopsis.min_bits = static_cast<uint64_t>(min);
      out.synopsis.max_bits = static_cast<uint64_t>(max);
    }
  }

  Encoded enc = EncodeValues(values.data(), rows);
  out.encoding = enc.encoding;
  out.payload_len = static_cast<uint32_t>(enc.payload.size());
  out.body.append(enc.payload);
  return out;
}

void WriteBlockHeader(std::ofstream& out, const BuiltBlock& block,
                      size_t rows) {
  wire::WireWriter w;
  w.U32(static_cast<uint32_t>(rows));
  w.U8(block.encoding);
  w.U8(block.synopsis.has_minmax ? kFlagHasMinMax : 0);
  w.U16(0);
  w.U32(block.synopsis.null_count);
  w.U64(block.synopsis.min_bits);
  w.U64(block.synopsis.max_bits);
  w.U32(block.validity_len);
  w.U32(block.payload_len);
  w.U32(wire::Crc32(block.body.data(), block.body.size()));
  const std::string& bytes = w.buffer();
  CheckArg(bytes.size() == kBlockHeaderBytes, "block header size");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

void Write(const PartitionedTable& table, const std::string& dir,
           const WriteOptions& options) {
  CheckArg(!table.lazy(),
           "wakeblock::Write requires a materialized table (read it "
           "eagerly first)");
  CheckArg(options.block_rows > 0 && options.block_rows <= kMaxBlockRows,
           "block_rows out of range");
  const Schema& schema = table.schema();
  CheckArg(schema.num_fields() > 0 && schema.num_fields() <= kMaxColumns,
           "unsupported column count");
  for (const auto& f : schema.fields()) {
    CheckArg(SafeFieldName(f.name), "field name '" + f.name +
                                        "' is not a safe file name");
  }
  CheckArg(SafeFieldName(table.name()),
           "table name '" + table.name() + "' is not a safe directory name");

  std::string base = dir + "/" + table.name();
  std::filesystem::create_directories(base);
  std::vector<BlockSpan> spans = PlanBlocks(table, options.block_rows);

  std::vector<std::vector<uint64_t>> offsets(schema.num_fields());
  std::vector<uint64_t> file_sizes(schema.num_fields());
  for (size_t f = 0; f < schema.num_fields(); ++f) {
    const Field& field = schema.field(f);
    std::string path = base + "/" + field.name + ".col";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    CheckArg(out.good(), "cannot write " + path);

    wire::WireWriter header;
    header.U32(kColMagic);
    header.U8(kFormatVersion);
    header.U8(static_cast<uint8_t>(field.type));
    header.U16(0);
    out.write(header.buffer().data(),
              static_cast<std::streamsize>(header.buffer().size()));
    uint64_t pos = kColFileHeaderBytes;

    // String columns: one table-wide dictionary in first-appearance
    // order, written as a page before the blocks; blocks then store codes.
    StringDict dict;
    std::vector<std::vector<int32_t>> codes;
    if (field.type == ValueType::kString) {
      codes.resize(table.num_partitions());
      for (size_t p = 0; p < table.num_partitions(); ++p) {
        const Column& col = table.partition(p)->column(f);
        size_t n = table.partition(p)->num_rows();
        codes[p].reserve(n);
        for (size_t r = 0; r < n; ++r) {
          codes[p].push_back(col.IsNull(r) ? Column::kNullCode
                                           : dict.Intern(col.StringAt(r)));
        }
      }
      wire::WireWriter page;
      for (size_t i = 0; i < dict.size(); ++i) {
        page.Str(dict.At(static_cast<int32_t>(i)));
      }
      wire::WireWriter page_header;
      page_header.U32(static_cast<uint32_t>(dict.size()));
      page_header.U32(static_cast<uint32_t>(page.buffer().size()));
      page_header.U32(wire::Crc32(page.buffer().data(), page.buffer().size()));
      out.write(page_header.buffer().data(),
                static_cast<std::streamsize>(page_header.buffer().size()));
      out.write(page.buffer().data(),
                static_cast<std::streamsize>(page.buffer().size()));
      pos += page_header.buffer().size() + page.buffer().size();
    }

    for (const BlockSpan& span : spans) {
      const Column& col = table.partition(span.partition)->column(f);
      BuiltBlock block = BuildBlock(
          col, field.type, span.begin, span.rows,
          field.type == ValueType::kString ? &codes[span.partition] : nullptr);
      offsets[f].push_back(pos);
      WriteBlockHeader(out, block, span.rows);
      out.write(block.body.data(),
                static_cast<std::streamsize>(block.body.size()));
      pos += kBlockHeaderBytes + block.body.size();
    }
    file_sizes[f] = pos;
    out.flush();
    CheckArg(out.good(), "write failed for " + path);
  }

  // Meta last: it records the offsets collected above. CRC'd like a wire
  // frame so a torn write surfaces at open, not as a bad read later.
  wire::WireWriter payload;
  payload.Str(table.name());
  payload.U32(static_cast<uint32_t>(schema.num_fields()));
  for (const auto& f : schema.fields()) {
    payload.Str(f.name);
    payload.U8(static_cast<uint8_t>(TypeChar(f.type)));
    payload.U8(f.mutable_attr ? 1 : 0);
  }
  payload.U32(static_cast<uint32_t>(schema.primary_key().size()));
  for (const auto& k : schema.primary_key()) payload.Str(k);
  payload.U32(static_cast<uint32_t>(schema.clustering_key().size()));
  for (const auto& k : schema.clustering_key()) payload.Str(k);
  payload.U32(static_cast<uint32_t>(table.num_partitions()));
  payload.U32(static_cast<uint32_t>(options.block_rows));
  payload.U32(static_cast<uint32_t>(spans.size()));
  for (const BlockSpan& s : spans) {
    payload.U32(s.partition);
    payload.U32(static_cast<uint32_t>(s.rows));
  }
  for (size_t f = 0; f < schema.num_fields(); ++f) {
    for (uint64_t off : offsets[f]) payload.U64(off);
    payload.U64(file_sizes[f]);
  }

  std::string meta_path = base + "/table.meta";
  std::ofstream meta(meta_path, std::ios::binary | std::ios::trunc);
  CheckArg(meta.good(), "cannot write " + meta_path);
  wire::WireWriter head;
  head.U32(kMetaMagic);
  head.U8(kFormatVersion);
  head.U32(static_cast<uint32_t>(payload.buffer().size()));
  head.U32(wire::Crc32(payload.buffer().data(), payload.buffer().size()));
  meta.write(head.buffer().data(),
             static_cast<std::streamsize>(head.buffer().size()));
  meta.write(payload.buffer().data(),
             static_cast<std::streamsize>(payload.buffer().size()));
  meta.flush();
  CheckArg(meta.good(), "write failed for " + meta_path);
}

// ---------------------------------------------------------------------------
// Open: parse + validate everything the reader will later rely on
// ---------------------------------------------------------------------------

namespace {

ValueType TypeFromByte(uint8_t b) {
  switch (static_cast<ValueType>(b)) {
    case ValueType::kInt64:
    case ValueType::kFloat64:
    case ValueType::kString:
    case ValueType::kDate:
    case ValueType::kBool:
      return static_cast<ValueType>(b);
  }
  Fail("bad column type byte");
}

}  // namespace

std::shared_ptr<const BlockTable> BlockTable::Open(const std::string& dir,
                                                   const std::string& name) {
  auto table = std::shared_ptr<BlockTable>(new BlockTable());
  table->base_ = dir + "/" + name;
  std::string meta_bytes = ReadWholeFile(table->base_ + "/table.meta");
  wire::WireReader head(meta_bytes);
  Check(head.U32() == kMetaMagic, "bad meta magic");
  Check(head.U8() == kFormatVersion, "unsupported meta version");
  uint32_t payload_len = head.U32();
  uint32_t crc = head.U32();
  head.Require(payload_len, "meta payload");
  const char* payload = meta_bytes.data() + (meta_bytes.size() -
                                             head.remaining());
  Check(head.remaining() == payload_len, "trailing bytes after meta payload");
  Check(wire::Crc32(payload, payload_len) == crc, "meta CRC mismatch");

  wire::WireReader r(payload, payload_len);
  table->name_ = r.Str();
  Check(table->name_ == name, "meta table name mismatch");
  uint32_t num_fields = r.U32();
  Check(num_fields > 0 && num_fields <= kMaxColumns, "bad field count");
  for (uint32_t i = 0; i < num_fields; ++i) {
    std::string fname = r.Str();
    Check(SafeFieldName(fname), "unsafe field name in meta");
    ValueType type = TypeFromByte(r.U8());
    bool mut = r.U8() != 0;
    Check(!table->schema_.HasField(fname), "duplicate field in meta");
    table->schema_.AddField(Field(fname, type, mut));
  }
  auto read_key = [&](const char* what) {
    uint32_t n = r.U32();
    Check(n <= num_fields, std::string("bad ") + what + " arity");
    std::vector<std::string> key;
    for (uint32_t i = 0; i < n; ++i) {
      key.push_back(r.Str());
      Check(table->schema_.HasField(key.back()),
            std::string(what) + " names unknown field");
    }
    return key;
  };
  table->schema_.set_primary_key(read_key("primary key"));
  table->schema_.set_clustering_key(read_key("clustering key"));
  uint32_t num_partitions = r.U32();
  table->num_partitions_ = num_partitions;
  table->nominal_block_rows_ = r.U32();
  Check(table->nominal_block_rows_ > 0 &&
            table->nominal_block_rows_ <= kMaxBlockRows,
        "bad nominal block size");
  uint32_t num_blocks = r.U32();
  r.Require(static_cast<size_t>(num_blocks) * 8, "block list");
  table->blocks_.reserve(num_blocks);
  uint32_t prev_partition = 0;
  for (uint32_t b = 0; b < num_blocks; ++b) {
    BlockInfo info;
    info.partition = r.U32();
    info.rows = r.U32();
    Check(info.partition < num_partitions, "block partition out of range");
    Check(info.partition >= prev_partition, "block partitions out of order");
    // A block may legitimately exceed the nominal size (clustering-key
    // extension), but never the hard decode-allocation bound.
    Check(info.rows <= kMaxBlockRows, "block row count too large");
    prev_partition = info.partition;
    table->blocks_.push_back(info);
    table->total_rows_ += info.rows;
  }
  Check(num_partitions > 0 || num_blocks == 0, "blocks without partitions");

  table->cols_.resize(num_fields);
  for (uint32_t f = 0; f < num_fields; ++f) {
    ColumnInfo& col = table->cols_[f];
    r.Require(static_cast<size_t>(num_blocks + 1) * 8, "offset table");
    col.offsets.reserve(num_blocks);
    uint64_t prev = 0;
    for (uint32_t b = 0; b < num_blocks; ++b) {
      uint64_t off = r.U64();
      Check(off >= kColFileHeaderBytes && (b == 0 || off > prev),
            "block offsets not increasing");
      prev = off;
      col.offsets.push_back(off);
    }
    col.file_size = r.U64();
    Check(num_blocks == 0 || col.file_size > prev, "file size before blocks");
  }
  Check(r.AtEnd(), "trailing bytes in meta payload");

  // Validate every column file: real size, header, dictionary page, and
  // each block header (cached for synopsis pruning).
  for (uint32_t f = 0; f < num_fields; ++f) {
    ColumnInfo& col = table->cols_[f];
    const Field& field = table->schema_.field(f);
    std::string path = table->ColumnPath(f);
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    Check(in.good(), "cannot open " + path);
    uint64_t real_size = static_cast<uint64_t>(in.tellg());
    Check(real_size == col.file_size, "file size mismatch for " + path);

    uint8_t fh[kColFileHeaderBytes];
    ReadAt(in, 0, sizeof(fh), fh, "column file header");
    wire::WireReader fhr(fh, sizeof(fh));
    Check(fhr.U32() == kColMagic, "bad column magic in " + path);
    Check(fhr.U8() == kFormatVersion, "unsupported column version");
    Check(TypeFromByte(fhr.U8()) == field.type,
          "column type mismatch in " + path);
    Check(fhr.U16() == 0, "bad reserved bytes in " + path);

    uint64_t blocks_start = kColFileHeaderBytes;
    if (field.type == ValueType::kString) {
      uint8_t ph[12];
      Check(real_size >= kColFileHeaderBytes + sizeof(ph),
            "truncated dictionary page in " + path);
      ReadAt(in, kColFileHeaderBytes, sizeof(ph), ph, "dictionary header");
      wire::WireReader phr(ph, sizeof(ph));
      uint32_t count = phr.U32();
      uint32_t page_len = phr.U32();
      uint32_t page_crc = phr.U32();
      // Both bounds checked against the real on-disk size before the
      // allocation below — a forged length cannot balloon memory.
      Check(page_len <= real_size - kColFileHeaderBytes - sizeof(ph),
            "dictionary page overruns file in " + path);
      Check(static_cast<uint64_t>(count) * 4 <= page_len,
            "dictionary count overruns page in " + path);
      std::string page(page_len, '\0');
      ReadAt(in, kColFileHeaderBytes + sizeof(ph), page_len, page.data(),
             "dictionary page");
      Check(wire::Crc32(page.data(), page.size()) == page_crc,
            "dictionary CRC mismatch in " + path);
      col.dict = std::make_shared<StringDict>();
      col.dict->Reserve(count);
      wire::WireReader pr(page);
      for (uint32_t i = 0; i < count; ++i) {
        int32_t code = col.dict->Intern(pr.Str());
        Check(code == static_cast<int32_t>(i),
              "duplicate dictionary entry in " + path);
      }
      Check(pr.AtEnd(), "trailing bytes in dictionary page");
      blocks_start = kColFileHeaderBytes + sizeof(ph) + page_len;
    }

    col.headers.reserve(col.offsets.size());
    for (size_t b = 0; b < col.offsets.size(); ++b) {
      Check(col.offsets[b] >= blocks_start &&
                col.offsets[b] + kBlockHeaderBytes <= real_size,
            "block header outside file in " + path);
      uint8_t hb[kBlockHeaderBytes];
      ReadAt(in, col.offsets[b], sizeof(hb), hb, "block header");
      wire::WireReader hr(hb, sizeof(hb));
      BlockHeader h;
      h.rows = hr.U32();
      h.encoding = hr.U8();
      h.flags = hr.U8();
      Check(hr.U16() == 0, "bad reserved block bytes in " + path);
      h.null_count = hr.U32();
      h.min_bits = hr.U64();
      h.max_bits = hr.U64();
      h.validity_len = hr.U32();
      h.payload_len = hr.U32();
      h.crc = hr.U32();
      Check(h.rows == table->blocks_[b].rows,
            "block row count disagrees with meta in " + path);
      Check(h.encoding <= kEncodingBitpack, "bad encoding in " + path);
      Check((h.flags & ~kFlagHasMinMax) == 0, "bad flags in " + path);
      Check(h.null_count <= h.rows, "null count exceeds rows in " + path);
      uint32_t expect_validity =
          h.null_count > 0 ? static_cast<uint32_t>(ValidityBytes(h.rows)) : 0;
      Check(h.validity_len == expect_validity,
            "validity length mismatch in " + path);
      uint64_t end = b + 1 < col.offsets.size() ? col.offsets[b + 1]
                                                : col.file_size;
      Check(col.offsets[b] + kBlockHeaderBytes + h.validity_len +
                    h.payload_len ==
                end,
            "block body does not fill its extent in " + path);
      col.headers.push_back(h);
    }
  }
  return table;
}

// ---------------------------------------------------------------------------
// Block decode
// ---------------------------------------------------------------------------

std::string BlockTable::ColumnPath(size_t field) const {
  return base_ + "/" + schema_.field(field).name + ".col";
}

Column BlockTable::DecodeColumnBlock(size_t field, size_t b) const {
  const ColumnInfo& info = cols_[field];
  const BlockHeader& h = info.headers[b];
  const Field& spec = schema_.field(field);
  size_t rows = h.rows;

  std::string body(static_cast<size_t>(h.validity_len) + h.payload_len, '\0');
  if (!body.empty()) {
    std::ifstream in(ColumnPath(field), std::ios::binary);
    Check(in.good(), "cannot open " + ColumnPath(field));
    ReadAt(in, info.offsets[b] + kBlockHeaderBytes, body.size(), body.data(),
           "block body");
  }
  Check(wire::Crc32(body.data(), body.size()) == h.crc,
        "block CRC mismatch in " + ColumnPath(field));

  ValidityBitmap valid;
  if (h.null_count > 0) {
    Check(h.validity_len == ValidityBytes(rows),
          "validity length mismatch in " + ColumnPath(field));
    // Packed bytes decode straight into bitmap words (same LSB-first
    // layout); forged trailing bits are normalized away, so the popcount
    // cross-check below sees only logical rows.
    valid = ValidityBitmap::FromPackedBytes(
        reinterpret_cast<const uint8_t*>(body.data()), rows);
    Check(valid.CountNulls() == h.null_count,
          "validity mask disagrees with null count");
  }

  const auto* payload =
      reinterpret_cast<const uint8_t*>(body.data()) + h.validity_len;

  Column out(spec.type);
  if (spec.type == ValueType::kFloat64 && h.encoding == kEncodingRaw) {
    // Raw double payloads are the stored bit patterns verbatim: decode
    // straight into the column, skipping the int64 staging pass (doubles
    // rarely pack, so this is the common case for measure columns).
    Check(h.payload_len == rows * 8, "raw payload length mismatch");
    std::vector<double> doubles(rows);
    std::memcpy(doubles.data(), payload, h.payload_len);
    *out.mutable_doubles() = std::move(doubles);
    if (h.null_count > 0) out.set_validity(std::move(valid));
    return out;
  }

  std::vector<int64_t> values;
  DecodeValues(h.encoding, payload, h.payload_len, rows, &values);
  if (spec.type == ValueType::kString) {
    auto size = static_cast<int64_t>(info.dict->size());
    std::vector<int32_t> codes(rows);
    for (size_t r = 0; r < rows; ++r) {
      // A forged code must fail loudly here, never index out of the dict.
      // Failure messages are built only on the cold path: this loop runs
      // per row of every string block.
      if (values[r] < Column::kNullCode || values[r] >= size) {
        Fail("dictionary code out of range in " + ColumnPath(field));
      }
      if (values[r] == Column::kNullCode &&
          (h.null_count == 0 || valid.Get(r))) {
        Fail("null code on a valid row in " + ColumnPath(field));
      }
      codes[r] = static_cast<int32_t>(values[r]);
    }
    out = Column::DictFromCodes(info.dict, std::move(codes), std::move(valid));
    return out;
  }
  if (spec.type == ValueType::kFloat64) {
    std::vector<double> doubles(rows);
    for (size_t r = 0; r < rows; ++r) {
      doubles[r] = BitsF64(static_cast<uint64_t>(values[r]));
    }
    *out.mutable_doubles() = std::move(doubles);
  } else {
    *out.mutable_ints() = std::move(values);
  }
  if (h.null_count > 0) out.set_validity(std::move(valid));
  return out;
}

DataFramePtr BlockTable::ReadBlock(size_t b,
                                   const std::vector<std::string>& columns,
                                   const ExprPtr& filter) const {
  CheckArg(b < blocks_.size(), "block index out of range");
  size_t rows = blocks_[b].rows;
  if (filter != nullptr && Refuted(*filter, b)) {
    blocks_skipped_.fetch_add(1, std::memory_order_relaxed);
    rows_skipped_.fetch_add(rows, std::memory_order_relaxed);
    return nullptr;
  }
  Schema narrowed = columns.empty() ? schema_ : schema_.Select(columns);
  auto df = std::make_shared<DataFrame>(narrowed);
  for (size_t c = 0; c < narrowed.num_fields(); ++c) {
    size_t field = schema_.FieldIndex(narrowed.field(c).name);
    *df->mutable_column(c) = DecodeColumnBlock(field, b);
  }
  blocks_read_.fetch_add(1, std::memory_order_relaxed);
  rows_read_.fetch_add(rows, std::memory_order_relaxed);
  return df;
}

// ---------------------------------------------------------------------------
// Synopsis pruning
// ---------------------------------------------------------------------------

namespace {

// Splits a comparison into (column, literal, op-with-column-on-the-left).
bool SplitCompare(const Expr& cmp, const Expr** col, const Value** lit,
                  CompareOp* op) {
  const auto& kids = cmp.children();
  if (kids.size() != 2) return false;
  const Expr& l = *kids[0];
  const Expr& r = *kids[1];
  if (l.kind() == ExprKind::kColumn && r.kind() == ExprKind::kLiteral) {
    *col = &l;
    *lit = &r.literal();
    *op = cmp.cmp_op();
    return true;
  }
  if (l.kind() == ExprKind::kLiteral && r.kind() == ExprKind::kColumn) {
    *col = &r;
    *lit = &l.literal();
    switch (cmp.cmp_op()) {
      case CompareOp::kLt: *op = CompareOp::kGt; break;
      case CompareOp::kLe: *op = CompareOp::kGe; break;
      case CompareOp::kGt: *op = CompareOp::kLt; break;
      case CompareOp::kGe: *op = CompareOp::kLe; break;
      default: *op = cmp.cmp_op(); break;
    }
    return true;
  }
  return false;
}

// Conservative refutation of `op` against a [min, max] range.
template <typename T>
bool RangeRefutes(CompareOp op, T lit, T min, T max) {
  switch (op) {
    case CompareOp::kEq: return lit < min || lit > max;
    case CompareOp::kNe: return min == max && min == lit;
    case CompareOp::kLt: return min >= lit;   // needs some v <  lit
    case CompareOp::kLe: return min > lit;    // needs some v <= lit
    case CompareOp::kGt: return max <= lit;   // needs some v >  lit
    case CompareOp::kGe: return max < lit;    // needs some v >= lit
  }
  return false;
}

}  // namespace

bool BlockTable::CompareRefuted(const Expr& cmp, size_t b) const {
  const Expr* col = nullptr;
  const Value* lit = nullptr;
  CompareOp op = CompareOp::kEq;
  if (!SplitCompare(cmp, &col, &lit, &op)) return false;
  size_t field = schema_.FindField(col->column_name());
  if (field == Schema::npos) return false;
  const BlockHeader& h = cols_[field].headers[b];
  // Comparison with NULL is never true, and a block of only nulls cannot
  // satisfy any comparison.
  if (lit->is_null) return true;
  if (h.null_count == h.rows) return h.rows > 0;

  const Field& spec = schema_.field(field);
  if (spec.type == ValueType::kString) {
    // Codes carry no order, but equality prunes on dictionary absence.
    if (lit->type != ValueType::kString) return false;
    if (op == CompareOp::kEq) {
      return cols_[field].dict->Find(lit->s) == StringDict::kNotFound;
    }
    return false;
  }
  if (lit->type == ValueType::kString) return false;
  if ((h.flags & kFlagHasMinMax) == 0) return false;

  if (spec.type == ValueType::kFloat64 || lit->type == ValueType::kFloat64) {
    double min = spec.type == ValueType::kFloat64
                     ? BitsF64(h.min_bits)
                     : static_cast<double>(static_cast<int64_t>(h.min_bits));
    double max = spec.type == ValueType::kFloat64
                     ? BitsF64(h.max_bits)
                     : static_cast<double>(static_cast<int64_t>(h.max_bits));
    return RangeRefutes(op, lit->AsDouble(), min, max);
  }
  return RangeRefutes(op, lit->i, static_cast<int64_t>(h.min_bits),
                      static_cast<int64_t>(h.max_bits));
}

bool BlockTable::Refuted(const Expr& e, size_t b) const {
  switch (e.kind()) {
    case ExprKind::kLogic:
      if (e.logic_op() == LogicOp::kAnd) {
        return Refuted(*e.children()[0], b) || Refuted(*e.children()[1], b);
      }
      return Refuted(*e.children()[0], b) && Refuted(*e.children()[1], b);
    case ExprKind::kCompare:
      return CompareRefuted(e, b);
    case ExprKind::kInList: {
      const Expr& input = *e.children()[0];
      if (input.kind() != ExprKind::kColumn) return false;
      size_t field = schema_.FindField(input.column_name());
      if (field == Schema::npos) return false;
      const BlockHeader& h = cols_[field].headers[b];
      if (h.null_count == h.rows) return h.rows > 0;
      const Field& spec = schema_.field(field);
      for (const Value& v : e.in_list()) {
        if (v.is_null) continue;  // = NULL matches nothing; skip the value
        if (spec.type == ValueType::kString) {
          if (v.type != ValueType::kString) return false;
          if (cols_[field].dict->Find(v.s) != StringDict::kNotFound) {
            return false;
          }
        } else if ((h.flags & kFlagHasMinMax) == 0 ||
                   v.type == ValueType::kString) {
          return false;
        } else if (spec.type == ValueType::kFloat64 ||
                   v.type == ValueType::kFloat64) {
          double min = spec.type == ValueType::kFloat64
                           ? BitsF64(h.min_bits)
                           : static_cast<double>(
                                 static_cast<int64_t>(h.min_bits));
          double max = spec.type == ValueType::kFloat64
                           ? BitsF64(h.max_bits)
                           : static_cast<double>(
                                 static_cast<int64_t>(h.max_bits));
          if (!RangeRefutes(CompareOp::kEq, v.AsDouble(), min, max)) {
            return false;
          }
        } else if (!RangeRefutes(CompareOp::kEq, v.i,
                                 static_cast<int64_t>(h.min_bits),
                                 static_cast<int64_t>(h.max_bits))) {
          return false;
        }
      }
      return !e.in_list().empty();
    }
    case ExprKind::kIsNull: {
      const Expr& input = *e.children()[0];
      if (input.kind() != ExprKind::kColumn) return false;
      size_t field = schema_.FindField(input.column_name());
      if (field == Schema::npos) return false;
      const BlockHeader& h = cols_[field].headers[b];
      return h.rows > 0 && h.null_count == 0;
    }
    case ExprKind::kNot: {
      const Expr& input = *e.children()[0];
      // NOT (col IS NULL): refuted when every row is null.
      if (input.kind() == ExprKind::kIsNull &&
          input.children()[0]->kind() == ExprKind::kColumn) {
        size_t field = schema_.FindField(input.children()[0]->column_name());
        if (field == Schema::npos) return false;
        const BlockHeader& h = cols_[field].headers[b];
        return h.rows > 0 && h.null_count == h.rows;
      }
      return false;
    }
    default:
      return false;
  }
}

bool BlockTable::BlockRefuted(size_t b, const Expr& filter) const {
  CheckArg(b < blocks_.size(), "block index out of range");
  return Refuted(filter, b);
}

ScanStats BlockTable::stats() const {
  ScanStats s;
  s.blocks_read = blocks_read_.load(std::memory_order_relaxed);
  s.blocks_skipped = blocks_skipped_.load(std::memory_order_relaxed);
  s.rows_read = rows_read_.load(std::memory_order_relaxed);
  s.rows_skipped = rows_skipped_.load(std::memory_order_relaxed);
  return s;
}

void BlockTable::ResetStats() const {
  blocks_read_.store(0, std::memory_order_relaxed);
  blocks_skipped_.store(0, std::memory_order_relaxed);
  rows_read_.store(0, std::memory_order_relaxed);
  rows_skipped_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Eager read + catalog helpers
// ---------------------------------------------------------------------------

PartitionedTable Read(const std::string& dir, const std::string& name,
                      const std::vector<std::string>& columns) {
  BlockTablePtr handle = BlockTable::Open(dir, name);
  Schema schema =
      columns.empty() ? handle->schema() : handle->schema().Select(columns);
  PartitionedTable table(handle->name(), schema);
  size_t b = 0;
  for (size_t p = 0; p < handle->num_partitions(); ++p) {
    auto df = std::make_shared<DataFrame>(schema);
    while (b < handle->num_blocks() && handle->block_partition(b) == p) {
      DataFramePtr block = handle->ReadBlock(b, columns);
      df->Append(*block);
      ++b;
    }
    table.AddPartition(std::move(df));
  }
  return table;
}

std::vector<std::string> ListTables(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_directory()) continue;
    if (std::filesystem::exists(entry.path() / "table.meta")) {
      names.push_back(entry.path().filename().string());
    }
  }
  CheckArg(!ec, "cannot list " + dir);
  std::sort(names.begin(), names.end());
  return names;
}

Catalog OpenCatalog(const std::string& dir) {
  Catalog catalog;
  std::vector<std::string> names = ListTables(dir);
  CheckArg(!names.empty(), "no wakeblock tables under " + dir);
  for (const auto& name : names) {
    catalog.Add(std::make_shared<PartitionedTable>(
        PartitionedTable::OpenWakeblock(dir, name)));
  }
  return catalog;
}

}  // namespace wakeblock
}  // namespace wake
