// RFC-4180-style CSV reader/writer.
//
// The paper's user sessions start with read_csv (§1, §3.1); this module
// provides the comma-separated path next to the pipe-separated .tbl and
// binary .wpart formats. Quoting rules: fields containing commas, quotes,
// or newlines are double-quoted; embedded quotes are doubled.
#ifndef WAKE_STORAGE_CSV_H_
#define WAKE_STORAGE_CSV_H_

#include <string>

#include "frame/data_frame.h"

namespace wake {

/// Writes `df` to `path` with a `name:type` header row. NULLs of any type
/// write as empty unquoted fields; empty non-null strings write as `""`,
/// so the two survive a round trip.
void WriteCsv(const DataFrame& df, const std::string& path);

/// Reads a CSV produced by WriteCsv (schema from the header). Throws
/// wake::Error on malformed input. Empty unquoted fields read back as
/// NULL for every column type; quoted empty fields (`""`) are empty
/// strings. String columns come back dictionary-encoded. A non-empty
/// `columns` list makes the read projected: unselected fields are never
/// converted, allocated, or dict-encoded.
DataFrame ReadCsv(const std::string& path,
                  const std::vector<std::string>& columns = {});

/// Reads a headerless CSV against a caller-provided schema (optionally
/// projected to `columns`).
DataFrame ReadCsvWithSchema(const std::string& path, const Schema& schema,
                            const std::vector<std::string>& columns = {});

/// Parses one CSV record (handles quoting); exposed for testing. Returns
/// false at end of input. `offset` is consumed across calls. If `quoted`
/// is non-null it receives, per field, whether the field used quotes
/// (distinguishes NULL from the empty string).
bool ParseCsvRecord(const std::string& content, size_t* offset,
                    std::vector<std::string>* fields,
                    std::vector<uint8_t>* quoted = nullptr);

}  // namespace wake

#endif  // WAKE_STORAGE_CSV_H_
