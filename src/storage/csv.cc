#include "storage/csv.h"

#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace wake {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteField(const std::string& field) {
  if (!NeedsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

char TypeChar(ValueType t) {
  switch (t) {
    case ValueType::kInt64: return 'i';
    case ValueType::kFloat64: return 'f';
    case ValueType::kString: return 's';
    case ValueType::kDate: return 'd';
    case ValueType::kBool: return 'b';
  }
  return '?';
}

ValueType TypeFromChar(char c) {
  switch (c) {
    case 'i': return ValueType::kInt64;
    case 'f': return ValueType::kFloat64;
    case 's': return ValueType::kString;
    case 'd': return ValueType::kDate;
    case 'b': return ValueType::kBool;
  }
  throw Error(std::string("bad CSV type char: ") + c);
}

std::string FieldText(const Column& col, size_t row) {
  if (col.IsNull(row)) return "";
  switch (col.type()) {
    case ValueType::kFloat64:
      return StrFormat("%.17g", col.DoubleAt(row));
    case ValueType::kString:
      return col.StringAt(row);
    case ValueType::kDate:
      return FormatDate(col.IntAt(row));
    default:
      return std::to_string(col.IntAt(row));
  }
}

}  // namespace

bool ParseCsvRecord(const std::string& content, size_t* offset,
                    std::vector<std::string>* fields,
                    std::vector<uint8_t>* quoted) {
  fields->clear();
  if (quoted != nullptr) quoted->clear();
  size_t i = *offset;
  size_t n = content.size();
  if (i >= n) return false;
  std::string field;
  bool in_quotes = false;
  bool was_quoted = false;
  auto emit = [&] {
    fields->push_back(std::move(field));
    field.clear();
    if (quoted != nullptr) quoted->push_back(was_quoted ? 1 : 0);
    was_quoted = false;
  };
  while (i < n) {
    char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && content[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
      was_quoted = true;
      ++i;
      continue;
    }
    if (c == ',') {
      emit();
      ++i;
      continue;
    }
    if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < n && content[i + 1] == '\n') ++i;
      ++i;
      emit();
      *offset = i;
      return true;
    }
    field += c;
    ++i;
  }
  CheckArg(!in_quotes, "unterminated quoted CSV field");
  emit();
  *offset = n;
  return true;
}

void WriteCsv(const DataFrame& df, const std::string& path) {
  std::ofstream out(path);
  CheckArg(out.good(), "cannot write " + path);
  const Schema& schema = df.schema();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    if (c > 0) out << ',';
    out << QuoteField(schema.field(c).name + ":" +
                      TypeChar(schema.field(c).type));
  }
  out << '\n';
  for (size_t r = 0; r < df.num_rows(); ++r) {
    for (size_t c = 0; c < df.num_columns(); ++c) {
      if (c > 0) out << ',';
      const Column& col = df.column(c);
      // NULL writes as an empty unquoted field; an empty non-null string
      // writes as `""` so the distinction survives a round trip.
      if (col.type() == ValueType::kString && !col.IsNull(r) &&
          col.StringAt(r).empty()) {
        out << "\"\"";
      } else {
        out << QuoteField(FieldText(col, r));
      }
    }
    out << '\n';
  }
}

namespace {

DataFrame ReadCsvImpl(const std::string& path, const Schema* given_schema,
                      const std::vector<std::string>& columns) {
  std::ifstream in(path);
  CheckArg(in.good(), "cannot read " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string content = buffer.str();
  size_t offset = 0;
  std::vector<std::string> fields;
  std::vector<uint8_t> quoted;

  Schema full;
  if (given_schema != nullptr) {
    full = *given_schema;
  } else {
    CheckArg(ParseCsvRecord(content, &offset, &fields),
             "empty CSV file " + path);
    for (const auto& header : fields) {
      size_t colon = header.rfind(':');
      CheckArg(colon != std::string::npos && colon + 2 == header.size(),
               "CSV header field must be name:type, got '" + header + "'");
      full.AddField(
          Field(header.substr(0, colon), TypeFromChar(header[colon + 1])));
    }
  }
  Schema schema = columns.empty() ? full : full.Select(columns);
  // File field f lands in output column slot_of[f]; npos fields are never
  // converted or interned.
  std::vector<size_t> slot_of = full.ProjectionSlots(schema);

  DataFrame df(schema);
  // Sources build dict-encoded string columns: the engine's hot paths then
  // hash/compare/gather int32 codes instead of whole strings.
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    if (schema.field(c).type == ValueType::kString) {
      *df.mutable_column(c) = Column::NewDict();
    }
  }
  while (ParseCsvRecord(content, &offset, &fields, &quoted)) {
    // Blank separator line — but in a single-column schema an empty
    // unquoted line is a legitimate NULL row, so only multi-column files
    // skip it.
    if (full.num_fields() > 1 && fields.size() == 1 && fields[0].empty() &&
        quoted[0] == 0) {
      continue;
    }
    CheckArg(fields.size() == full.num_fields(),
             StrFormat("CSV row has %zu fields, schema has %zu",
                       fields.size(), full.num_fields()));
    for (size_t c = 0; c < fields.size(); ++c) {
      if (slot_of[c] == Schema::npos) continue;
      Column* col = df.mutable_column(slot_of[c]);
      const std::string& text = fields[c];
      // Empty numeric/date fields are NULL however they were quoted (there
      // is no empty number); for strings the quotes disambiguate NULL
      // (unquoted) from the empty string (`""`).
      if (text.empty() && (quoted[c] == 0 ||
                           full.field(c).type != ValueType::kString)) {
        col->AppendNull();
        continue;
      }
      switch (full.field(c).type) {
        case ValueType::kInt64:
        case ValueType::kBool:
          col->AppendInt(std::stoll(text));
          break;
        case ValueType::kFloat64:
          col->AppendDouble(std::stod(text));
          break;
        case ValueType::kString:
          col->AppendString(text);
          break;
        case ValueType::kDate:
          col->AppendInt(ParseDate(text));
          break;
      }
    }
  }
  return df;
}

}  // namespace

DataFrame ReadCsv(const std::string& path,
                  const std::vector<std::string>& columns) {
  return ReadCsvImpl(path, nullptr, columns);
}

DataFrame ReadCsvWithSchema(const std::string& path, const Schema& schema,
                            const std::vector<std::string>& columns) {
  return ReadCsvImpl(path, &schema, columns);
}

}  // namespace wake
