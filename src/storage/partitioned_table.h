// Partitioned table storage.
//
// A PartitionedTable is the on-"disk" layout Wake reads from: an ordered
// list of partitions (each a DataFrame) plus the metadata the paper says a
// base-table edf requires (§4.4): file list, tuple count per file, and the
// primary/clustering keys. Partitioning respects the clustering key — a
// clustering-key value never straddles two partitions — which is what makes
// clustering-key aggregations local operations (Case 1, §2.2).
//
// Two serialization formats are provided: a pipe-separated text format
// (TPC-H .tbl-compatible) and `.wpart`, a little-endian binary columnar
// format standing in for Parquet.
#ifndef WAKE_STORAGE_PARTITIONED_TABLE_H_
#define WAKE_STORAGE_PARTITIONED_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "frame/data_frame.h"
#include "frame/expr.h"
#include "storage/wakeblock.h"

namespace wake {

/// The only statistics Wake requires from the underlying data (§4.4).
struct TableMetadata {
  std::string name;
  Schema schema;
  std::vector<size_t> partition_rows;  // tuple count per partition/file
  size_t total_rows = 0;
};

class PartitionedTable;
using TablePtr = std::shared_ptr<const PartitionedTable>;

/// An ordered collection of partitions with shared schema.
class PartitionedTable {
 public:
  PartitionedTable() = default;
  PartitionedTable(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  /// Splits `df` into `num_partitions` chunks. If the schema has a
  /// clustering key and `df` is sorted by it, chunk boundaries are moved
  /// forward so no clustering-key value straddles two partitions.
  static PartitionedTable FromDataFrame(std::string name, const DataFrame& df,
                                        size_t num_partitions);

  /// Lazy wakeblock-backed table: holds only the open BlockTable handle
  /// (metadata + block synopses), decoding blocks on demand through the
  /// chunk API below. Partition-level accessors throw for lazy tables.
  static PartitionedTable OpenWakeblock(const std::string& dir,
                                        const std::string& name);

  /// Composite table over an ordered list of immutable segment tables
  /// sharing `schema` (a live table's hot + cold tablets): the chunk API
  /// concatenates the segments' chunks in order, so readers stream hot
  /// rows and block-skipped cold blocks through one table handle. The
  /// segments keep their own representation (eager or lazy); partition-
  /// level accessors and serializers throw. Zero segments is a valid
  /// empty table.
  static PartitionedTable FromSegments(std::string name, Schema schema,
                                       std::vector<TablePtr> segments);

  bool composite() const { return !segments_.empty(); }
  const std::vector<TablePtr>& segments() const { return segments_; }

  bool lazy() const { return block_source_ != nullptr; }
  /// The wakeblock handle backing a lazy table (null for eager tables).
  const wakeblock::BlockTablePtr& block_source() const {
    return block_source_;
  }

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_partitions() const {
    return lazy() ? block_source_->num_partitions() : partitions_.size();
  }
  const DataFramePtr& partition(size_t i) const;
  const std::vector<DataFramePtr>& partitions() const;

  void AddPartition(DataFramePtr partition);

  /// --- chunk API: the unit readers stream ---
  /// Eager tables have one chunk per partition; lazy tables one per row
  /// block (finer partials, and the granularity block skipping works at);
  /// composite tables concatenate their segments' chunks in order.
  size_t num_chunks() const;
  size_t chunk_rows(size_t i) const;
  /// Decodes chunk `i` narrowed to `columns` (empty = all). For lazy
  /// tables a `filter` refuted by the chunk's synopses returns nullptr
  /// without decoding (the caller still counts the chunk's rows toward
  /// progress); eager chunks ignore `filter` — pruning is advisory, the
  /// plan always keeps the residual Filter.
  DataFramePtr ReadChunk(size_t i, const std::vector<std::string>& columns,
                         const ExprPtr& filter = nullptr) const;

  size_t total_rows() const { return total_rows_; }
  TableMetadata metadata() const;

  /// Same rows, different partition count (used by the Fig 12 sweep).
  PartitionedTable Repartition(size_t num_partitions) const;

  /// Same rows, partitions in a shuffled order (Fig 10 uses shuffled
  /// inputs to simulate unexpected arrival order).
  PartitionedTable ShufflePartitions(uint64_t seed) const;

  /// Concatenation of all partitions (used by the exact engine).
  DataFrame Materialize() const;

  /// Concatenation of all partitions narrowed to `columns` (in the given
  /// order); only the named columns are copied.
  DataFrame Materialize(const std::vector<std::string>& columns) const;

  /// As above, additionally skipping chunks whose synopses refute
  /// `filter` (lazy tables only; eager tables ignore the filter). Only
  /// correct when the caller re-applies the predicate — the plan's
  /// residual Filter does — since surviving chunks still hold
  /// non-matching rows.
  DataFrame Materialize(const std::vector<std::string>& columns,
                        const ExprPtr& filter) const;

  /// Same rows narrowed to `columns`: each partition keeps only the named
  /// columns (dict pools stay shared, unused columns are never copied).
  /// Key metadata survives only if every key column survives.
  PartitionedTable SelectColumns(const std::vector<std::string>& columns) const;

  /// --- serialization ---
  /// Writes one `<name>.<i>.tbl` per partition plus `<name>.meta` into
  /// `dir`; `ReadTblDir` is the inverse. A non-empty `columns` list makes
  /// the read projected: unselected fields are never parsed, allocated,
  /// or dict-encoded.
  void WriteTblDir(const std::string& dir) const;
  static PartitionedTable ReadTblDir(const std::string& dir,
                                     const std::string& name,
                                     const std::vector<std::string>& columns =
                                         {});

  /// Binary columnar format, one `<name>.<i>.wpart` per partition.
  /// Projected reads seek past unselected fixed-width columns and skip
  /// string columns record-by-record without interning them.
  void WriteWpartDir(const std::string& dir) const;
  static PartitionedTable ReadWpartDir(const std::string& dir,
                                       const std::string& name,
                                       const std::vector<std::string>&
                                           columns = {});

 private:
  /// Maps a composite table's global chunk index to (segment, local
  /// chunk index within that segment).
  size_t SegmentOfChunk(size_t i, size_t* local) const;

  std::string name_;
  Schema schema_;
  std::vector<DataFramePtr> partitions_;
  size_t total_rows_ = 0;
  wakeblock::BlockTablePtr block_source_;  // non-null == lazy
  // Composite mode: ordered segments plus the chunk-count prefix sums
  // (seg_chunk_base_[i] = total chunks before segment i; back() = total).
  std::vector<std::shared_ptr<const PartitionedTable>> segments_;
  std::vector<size_t> seg_chunk_base_;
};

/// A table whose contents change over time (live ingestion). The catalog
/// resolves a dynamic table to an immutable snapshot per lookup, so a
/// query plans and scans one consistent tablet set no matter how many
/// appends land while it runs. Implementations must be thread-safe.
class DynamicTable {
 public:
  virtual ~DynamicTable() = default;
  virtual const std::string& name() const = 0;
  /// Fixed at registration; snapshots always carry this schema.
  virtual const Schema& schema() const = 0;
  /// An immutable snapshot of the current contents.
  virtual TablePtr Snapshot() const = 0;
};

/// Named table registry handed to query engines. Static tables resolve
/// to their one immutable object; dynamic tables resolve to a fresh
/// snapshot per GetPtr (engines take exactly one snapshot per scan, at
/// compile/execute time, which pins the query's tablet set).
class Catalog {
 public:
  void Add(TablePtr table);
  void AddDynamic(std::shared_ptr<DynamicTable> table);
  /// Stable reference to a static table; throws for dynamic tables
  /// (their contents move — callers must hold a GetPtr snapshot).
  const PartitionedTable& Get(const std::string& name) const;
  TablePtr GetPtr(const std::string& name) const;
  /// Schema of either kind of table (stable for both: static tables are
  /// immutable, dynamic tables fix their schema at registration).
  const Schema& GetSchema(const std::string& name) const;
  /// The registered dynamic table, or null if `name` is static/unknown.
  std::shared_ptr<DynamicTable> GetDynamic(const std::string& name) const;
  bool Has(const std::string& name) const;
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, TablePtr> tables_;
  std::map<std::string, std::shared_ptr<DynamicTable>> dynamic_;
};

/// Reads every `<name>.meta` table under `dir` (the WriteTblDir layout)
/// into a catalog. Counterpart of wakeblock::OpenCatalog for the text
/// format; throws if the directory holds no tables.
Catalog OpenTblCatalog(const std::string& dir);

}  // namespace wake

#endif  // WAKE_STORAGE_PARTITIONED_TABLE_H_
