// WanderJoin-style OLA baseline (Fig 9b comparison).
//
// WanderJoin [Li et al., SIGMOD'16] estimates SUM aggregates over multi-way
// equi-joins by random walks over join indexes: pick a uniform row of the
// root table, follow a uniform matching row at each hop, and weight the
// sampled value by the inverse of its sampling probability
// (Horvitz–Thompson). Estimates converge quickly to ~1% relative error but
// — as the paper notes (§8.4) — never reach the exact answer, unlike Wake.
//
// Faithful simplifications (documented in DESIGN.md): integer join keys,
// per-table filters precomputed as boolean masks, and the summed value
// expression evaluated over root-table columns (true for the modified
// Q3/Q7/Q10 used in the evaluation, whose SUM reads lineitem only).
#ifndef WAKE_BASELINE_WANDER_JOIN_H_
#define WAKE_BASELINE_WANDER_JOIN_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "frame/expr.h"
#include "storage/partitioned_table.h"

namespace wake {

/// A join path for random walks.
struct WanderJoinSpec {
  std::string root_table;
  ExprPtr root_filter;  // may be null
  ExprPtr value;        // SUM argument, over root-table columns

  struct Hop {
    std::string table;      // hop target
    std::string from_key;   // key column on the previous path table
    std::string to_key;     // key column on this table (indexed)
    ExprPtr filter;         // may be null
  };
  std::vector<Hop> hops;
};

/// Random-walk join estimator.
class WanderJoin {
 public:
  WanderJoin(const Catalog* catalog, WanderJoinSpec spec,
             uint64_t seed = 42);

  /// One converging estimate report.
  struct Estimate {
    double value = 0.0;     // running HT mean (estimate of the total SUM)
    double variance = 0.0;  // variance of the mean (sample var / walks)
    size_t walks = 0;
    double elapsed_seconds = 0.0;  // includes index-build time
  };

  /// Builds the per-hop hash indexes (timed as part of the first report).
  void BuildIndexes();

  /// Runs up to `max_walks` random walks, reporting every `report_every`.
  void Run(size_t max_walks, size_t report_every,
           const std::function<void(const Estimate&)>& on_estimate);

  /// Ground truth via full enumeration of the walk graph (testing aid).
  double ExactSum() const;

 private:
  struct HopState {
    DataFrame table;
    std::vector<uint8_t> mask;  // filter mask (empty = all pass)
    size_t from_col = 0;        // key column on the previous table
    size_t to_col = 0;          // indexed key column on this table
    std::unordered_map<int64_t, std::vector<uint32_t>> index;
  };

  const Catalog* catalog_;
  WanderJoinSpec spec_;
  uint64_t seed_;
  bool built_ = false;
  double build_seconds_ = 0.0;

  DataFrame root_;
  std::vector<uint8_t> root_mask_;
  std::vector<double> root_values_;
  std::vector<HopState> hops_;
};

/// Walk specs for the paper's modified TPC-H queries 3, 7, and 10.
WanderJoinSpec WanderJoinTpchSpec(int query);

}  // namespace wake

#endif  // WAKE_BASELINE_WANDER_JOIN_H_
