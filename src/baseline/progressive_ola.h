// ProgressiveDB-style OLA baseline (Fig 9a comparison).
//
// ProgressiveDB [Berg et al., VLDB'19] is a middleware on top of a
// conventional RDBMS: it splits a single-table query into chunked queries,
// re-executes the aggregation over all data seen so far for each chunk,
// and scales the partial results linearly (1/t). This reimplementation
// captures those defining properties:
//   - single table only (no joins, no nesting) — like the authors' system;
//   - per-chunk *re-execution* over the accumulated rows (no incremental
//     merge), the middleware cost that makes convergence slower;
//   - naive linear scaling of sums/counts (no growth model);
//   - single-threaded (no pipelining).
#ifndef WAKE_BASELINE_PROGRESSIVE_OLA_H_
#define WAKE_BASELINE_PROGRESSIVE_OLA_H_

#include <atomic>

#include "common/resource.h"
#include "core/engine.h"
#include "plan/plan.h"
#include "storage/partitioned_table.h"

namespace wake {

/// Middleware-style progressive executor for single-table aggregations.
class ProgressiveOla {
 public:
  explicit ProgressiveOla(const Catalog* catalog);

  /// Runs `plan` progressively. The plan must be a single-table pipeline:
  /// scan -> (filter|map)* -> aggregate [-> sort]; throws wake::Error
  /// otherwise (mirroring the authors' implementation, "currently limited
  /// to a single table", §8.1). When `cancel` is set it is polled before
  /// every chunk re-execution; once true, Execute throws
  /// wake::Error(kCancelled), bounding cancellation latency by one chunk.
  /// When `tracker` is set its budget is enforced at the same chunk
  /// boundaries: accumulated rows/bytes are charged per chunk, and on a
  /// breach Execute simply returns after the last emitted state — the
  /// chunked middleware degrades naturally (the caller inspects the
  /// tracker to tell a degraded run from a complete one).
  void Execute(const PlanNodePtr& plan, const StateCallback& on_state,
               const std::atomic<bool>* cancel = nullptr,
               ResourceTracker* tracker = nullptr);

 private:
  const Catalog* catalog_;
};

}  // namespace wake

#endif  // WAKE_BASELINE_PROGRESSIVE_OLA_H_
