// Exact all-at-once query engine: the "conventional data system" baseline.
//
// Executes the same logical plans as Wake but in the blocking style of the
// paper's exact baselines (Polars/Presto/Postgres/Vertica/Actian, §8.1):
// every operator fully materializes its input before producing output, and
// no estimates are ever produced. It shares the aggregation and join
// kernels with Wake, so result equality tests isolate exactly the OLA
// machinery.
#ifndef WAKE_BASELINE_EXACT_ENGINE_H_
#define WAKE_BASELINE_EXACT_ENGINE_H_

#include <atomic>

#include "common/resource.h"
#include "plan/plan.h"
#include "storage/partitioned_table.h"

namespace wake {

/// Blocking plan evaluator.
class ExactEngine {
 public:
  explicit ExactEngine(const Catalog* catalog) : catalog_(catalog) {}

  /// Evaluates `plan` to completion and returns the result frame.
  DataFrame Execute(const PlanNodePtr& plan) const;

  /// Cooperative cancellation: when set, Eval polls `cancel` at every
  /// operator entry and throws wake::Error(kCancelled) once it reads
  /// true, so cancellation latency is bounded by one operator. The
  /// pointee must outlive every Execute call.
  void set_cancel_token(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  /// Per-query budget enforcement. A blocking engine cannot degrade —
  /// there is no partial result to return — so Eval charges each
  /// materialized intermediate against the tracker and throws
  /// wake::Error(kResourceExhausted) at the next operator entry after any
  /// breach (memory, deadline, or rows-scanned). The pointee must outlive
  /// every Execute call; null disables enforcement.
  void set_tracker(ResourceTracker* tracker) { tracker_ = tracker; }

  /// Approximate peak intermediate size in bytes observed during the last
  /// Execute call (coarse stand-in for resident-set-size tracking, §8.2).
  size_t peak_bytes() const { return peak_bytes_; }

 private:
  DataFrame Eval(const PlanNodePtr& node) const;

  const Catalog* catalog_;
  const std::atomic<bool>* cancel_ = nullptr;
  ResourceTracker* tracker_ = nullptr;
  mutable size_t peak_bytes_ = 0;
};

}  // namespace wake

#endif  // WAKE_BASELINE_EXACT_ENGINE_H_
