#include "baseline/exact_engine.h"

#include "common/error.h"
#include "core/agg_state.h"
#include "core/join_kernel.h"
#include "plan/props.h"

namespace wake {

DataFrame ExactEngine::Execute(const PlanNodePtr& plan) const {
  peak_bytes_ = 0;
  return Eval(plan);
}

DataFrame ExactEngine::Eval(const PlanNodePtr& node) const {
  CheckArg(node != nullptr, "null plan");
  if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
    throw Error("query cancelled", ErrorCategory::kCancelled);
  }
  if (tracker_ != nullptr) {
    tracker_->CheckBreach();
    if (tracker_->breached()) {
      throw Error("query exceeded its budget: " + tracker_->BreachMessage(),
                  ErrorCategory::kResourceExhausted);
    }
  }
  DataFrame result;
  switch (node->op) {
    case PlanOp::kScan: {
      // Projected read: only the plan's column list is ever copied. The
      // scan filter lets wakeblock tables skip refuted blocks; the plan's
      // residual Filter removes any surviving non-matching rows.
      result = catalog_->GetPtr(node->table)
                   ->Materialize(node->columns, node->scan_filter);
      if (tracker_ != nullptr) tracker_->ChargeRows(result.num_rows());
      break;
    }
    case PlanOp::kMap: {
      DataFrame in = Eval(node->inputs[0]);
      DataFrame out;
      if (node->append_input) {
        out = in;
        for (const auto& p : node->projections) {
          Column c = p.expr->Eval(in);
          out.AddColumn(Field(p.name, c.type()), std::move(c));
        }
      } else {
        for (const auto& p : node->projections) {
          Column c = p.expr->Eval(in);
          out.AddColumn(Field(p.name, c.type()), std::move(c));
        }
      }
      result = std::move(out);
      break;
    }
    case PlanOp::kFilter: {
      DataFrame in = Eval(node->inputs[0]);
      // Selection-kernel filter off the evaluated predicate column.
      result = in.FilterBy(node->predicate->Eval(in));
      break;
    }
    case PlanOp::kJoin: {
      DataFrame left = Eval(node->inputs[0]);
      DataFrame right = Eval(node->inputs[1]);
      Schema out_schema = JoinOutputSchema(left.schema(), right.schema(),
                                           node->right_keys, node->join_type);
      result = HashJoin(left, right, node->left_keys, node->right_keys,
                        node->join_type, out_schema);
      break;
    }
    case PlanOp::kAggregate: {
      DataFrame in = Eval(node->inputs[0]);
      Schema out_schema =
          AggOutputSchema(in.schema(), node->group_by, node->aggs);
      GroupedAggState state(node->group_by, node->aggs, in.schema(),
                            out_schema);
      state.Consume(in);
      result = state.Finalize(AggScaling{}).frame;
      break;
    }
    case PlanOp::kSortLimit: {
      DataFrame in = Eval(node->inputs[0]);
      DataFrame sorted = in.SortBy(node->sort_keys);
      result = node->limit > 0 ? sorted.Head(node->limit) : std::move(sorted);
      break;
    }
  }
  peak_bytes_ = std::max(peak_bytes_, result.ByteSize());
  if (tracker_ != nullptr) {
    // Count each materialized intermediate while it is the live result;
    // the parent operator's own charge replaces it (blocking evaluation
    // holds parent + children simultaneously only inside the switch
    // above, which the per-operator breach check brackets).
    tracker_->Charge(result.ByteSize());
    tracker_->Credit(result.ByteSize());
  }
  return result;
}

}  // namespace wake
