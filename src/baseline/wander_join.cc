#include "baseline/wander_join.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/stopwatch.h"

namespace wake {

namespace {

std::vector<uint8_t> EvalMask(const DataFrame& df, const ExprPtr& filter) {
  if (filter == nullptr) return {};
  Column mask_col = filter->Eval(df);
  std::vector<uint8_t> mask(mask_col.size());
  for (size_t i = 0; i < mask.size(); ++i) {
    mask[i] = (mask_col.IsValid(i) && mask_col.ints()[i] != 0) ? 1 : 0;
  }
  return mask;
}

bool Passes(const std::vector<uint8_t>& mask, size_t row) {
  return mask.empty() || mask[row] != 0;
}

}  // namespace

WanderJoin::WanderJoin(const Catalog* catalog, WanderJoinSpec spec,
                       uint64_t seed)
    : catalog_(catalog), spec_(std::move(spec)), seed_(seed) {
  CheckArg(catalog != nullptr, "null catalog");
}

void WanderJoin::BuildIndexes() {
  if (built_) return;
  Stopwatch clock;
  root_ = catalog_->GetPtr(spec_.root_table)->Materialize();
  root_mask_ = EvalMask(root_, spec_.root_filter);
  Column values = spec_.value->Eval(root_);
  root_values_.resize(values.size());
  for (size_t i = 0; i < root_values_.size(); ++i) {
    root_values_[i] = values.DoubleAt(i);
  }

  const Schema* prev_schema = &root_.schema();
  for (const auto& hop : spec_.hops) {
    HopState state;
    state.table = catalog_->GetPtr(hop.table)->Materialize();
    state.mask = EvalMask(state.table, hop.filter);
    state.from_col = prev_schema->FieldIndex(hop.from_key);
    state.to_col = state.table.schema().FieldIndex(hop.to_key);
    const Column& keys = state.table.column(state.to_col);
    CheckArg(IsIntPhysical(keys.type()), "wander join needs integer keys");
    for (size_t r = 0; r < keys.size(); ++r) {
      state.index[keys.IntAt(r)].push_back(static_cast<uint32_t>(r));
    }
    hops_.push_back(std::move(state));
    prev_schema = &hops_.back().table.schema();
  }
  build_seconds_ = clock.ElapsedSeconds();
  built_ = true;
}

void WanderJoin::Run(size_t max_walks, size_t report_every,
                     const std::function<void(const Estimate&)>& on_estimate) {
  BuildIndexes();
  Rng rng(seed_);
  Stopwatch clock;
  size_t n_root = root_.num_rows();
  if (n_root == 0) {
    on_estimate({0.0, 0.0, 0, build_seconds_});
    return;
  }

  double sum = 0.0, sumsq = 0.0;
  for (size_t walk = 1; walk <= max_walks; ++walk) {
    // One random walk; X = v(r0) · N0 · Π |candidates| if every hop
    // succeeds and every filter passes, else 0.
    size_t row = static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(n_root) - 1));
    double x = 0.0;
    if (Passes(root_mask_, row)) {
      double weight = static_cast<double>(n_root);
      double value = root_values_[row];
      const DataFrame* current = &root_;
      size_t current_row = row;
      bool alive = true;
      for (const auto& hop : hops_) {
        int64_t key = current->column(hop.from_col).IntAt(current_row);
        auto it = hop.index.find(key);
        if (it == hop.index.end()) {
          alive = false;
          break;
        }
        const auto& candidates = it->second;
        size_t pick = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(candidates.size()) - 1));
        current_row = candidates[pick];
        current = &hop.table;
        weight *= static_cast<double>(candidates.size());
        if (!Passes(hop.mask, current_row)) {
          alive = false;
          break;
        }
      }
      if (alive) x = value * weight;
    }
    sum += x;
    sumsq += x * x;
    if (walk % report_every == 0 || walk == max_walks) {
      double n = static_cast<double>(walk);
      double mean = sum / n;
      double var = n > 1 ? (sumsq / n - mean * mean) / (n - 1) : 0.0;
      on_estimate({mean, std::max(var, 0.0), walk,
                   build_seconds_ + clock.ElapsedSeconds()});
    }
  }
}

double WanderJoin::ExactSum() const {
  CheckArg(built_, "call BuildIndexes first");
  // Depth-first enumeration of all join paths (small inputs only).
  double total = 0.0;
  std::function<double(size_t, const DataFrame*, size_t)> expand =
      [&](size_t hop_idx, const DataFrame* current,
          size_t current_row) -> double {
    if (hop_idx == hops_.size()) return 1.0;
    const HopState& hop = hops_[hop_idx];
    int64_t key = current->column(hop.from_col).IntAt(current_row);
    auto it = hop.index.find(key);
    if (it == hop.index.end()) return 0.0;
    double paths = 0.0;
    for (uint32_t r : it->second) {
      if (!Passes(hop.mask, r)) continue;
      paths += expand(hop_idx + 1, &hop.table, r);
    }
    return paths;
  };
  for (size_t r = 0; r < root_.num_rows(); ++r) {
    if (!Passes(root_mask_, r)) continue;
    total += root_values_[r] * expand(0, &root_, r);
  }
  return total;
}

WanderJoinSpec WanderJoinTpchSpec(int query) {
  auto C = [](const char* name) { return Expr::Col(name); };
  auto revenue = C("l_extendedprice") * (Expr::Float(1.0) - C("l_discount"));
  WanderJoinSpec spec;
  spec.root_table = "lineitem";
  spec.value = revenue;
  switch (query) {
    case 3:
      spec.root_filter = Gt(C("l_shipdate"), Expr::Date(1995, 3, 15));
      spec.hops.push_back({"orders", "l_orderkey", "o_orderkey",
                           Lt(C("o_orderdate"), Expr::Date(1995, 3, 15))});
      spec.hops.push_back({"customer", "o_custkey", "c_custkey",
                           Eq(C("c_mktsegment"), Expr::Str("BUILDING"))});
      return spec;
    case 7: {
      auto pair = std::vector<Value>{Value::Str("FRANCE"),
                                     Value::Str("GERMANY")};
      spec.root_filter =
          Expr::And(Ge(C("l_shipdate"), Expr::Date(1995, 1, 1)),
                    Le(C("l_shipdate"), Expr::Date(1996, 12, 31)));
      spec.hops.push_back({"supplier", "l_suppkey", "s_suppkey", nullptr});
      spec.hops.push_back({"nation", "s_nationkey", "n_nationkey",
                           Expr::In(C("n_name"), pair)});
      return spec;
    }
    case 10:
      spec.root_filter = Eq(C("l_returnflag"), Expr::Str("R"));
      spec.hops.push_back(
          {"orders", "l_orderkey", "o_orderkey",
           Expr::And(Ge(C("o_orderdate"), Expr::Date(1993, 10, 1)),
                     Lt(C("o_orderdate"), Expr::Date(1994, 1, 1)))});
      return spec;
    default:
      throw Error("wander join spec exists for queries 3, 7, 10");
  }
}

}  // namespace wake
