#include "baseline/progressive_ola.h"

#include <cmath>

#include "baseline/exact_engine.h"
#include "common/error.h"
#include "common/stopwatch.h"
#include "plan/props.h"

namespace wake {

namespace {

// Walks the single-input chain to the scan, validating the plan shape.
const PlanNode* FindScan(const PlanNodePtr& plan,
                         const PlanNode** agg_node) {
  const PlanNode* node = plan.get();
  while (node->op != PlanOp::kScan) {
    CheckArg(node->op != PlanOp::kJoin,
             "ProgressiveDB baseline supports single-table queries only");
    if (node->op == PlanOp::kAggregate) {
      CheckArg(*agg_node == nullptr,
               "ProgressiveDB baseline supports one aggregation level");
      *agg_node = node;
    }
    CheckArg(node->inputs.size() == 1, "unsupported plan shape");
    node = node->inputs[0].get();
  }
  return node;
}

}  // namespace

ProgressiveOla::ProgressiveOla(const Catalog* catalog) : catalog_(catalog) {
  CheckArg(catalog != nullptr, "null catalog");
}

void ProgressiveOla::Execute(const PlanNodePtr& plan,
                             const StateCallback& on_state,
                             const std::atomic<bool>* cancel,
                             ResourceTracker* tracker) {
  const PlanNode* agg_node = nullptr;
  const PlanNode* scan = FindScan(plan, &agg_node);
  CheckArg(agg_node != nullptr, "plan has no aggregation");
  // GetPtr: a dynamic (live) table resolves to one immutable snapshot
  // held for the whole run.
  TablePtr table_ptr = catalog_->GetPtr(scan->table);
  const PartitionedTable& table = *table_ptr;
  size_t total = table.total_rows();

  Stopwatch clock;
  // Projected scans re-accumulate only the plan's column list (the
  // middleware still re-executes per chunk, but over narrowed chunks).
  DataFrame accumulated(scan->columns.empty()
                            ? table.schema()
                            : table.schema().Select(scan->columns));
  size_t charged = 0;  // bytes of `accumulated` already on the tracker
  size_t seen = 0;
  for (size_t i = 0; i < table.num_chunks(); ++i) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      throw Error("query cancelled", ErrorCategory::kCancelled);
    }
    if (tracker != nullptr) {
      tracker->CheckBreach();
      // Degrade at the chunk boundary: the last emitted state already is
      // the best estimate over the data processed so far.
      if (tracker->breached()) return;
    }
    // Skipped chunks (block synopses refute the scan filter) still count
    // toward t: the estimate honestly covers their rows — they just
    // contribute none — so the 1/t scale-up stays unbiased.
    seen += table.chunk_rows(i);
    DataFramePtr chunk = table.ReadChunk(i, scan->columns, scan->scan_filter);
    bool is_final = i + 1 == table.num_chunks();
    if (chunk == nullptr && !is_final) continue;
    if (chunk != nullptr) {
      accumulated.Append(*chunk);
      if (tracker != nullptr) {
        tracker->ChargeRows(chunk->num_rows());
        size_t held = accumulated.ByteSize();
        tracker->Charge(held > charged ? held - charged : 0);
        charged = held > charged ? held : charged;
      }
    }
    double t = total == 0 ? 1.0
                          : static_cast<double>(seen) /
                                static_cast<double>(total);

    // Middleware re-execution: run the whole query over all rows seen so
    // far through a scratch catalog (this is the per-chunk cost that the
    // incremental systems avoid).
    Catalog scratch;
    scratch.Add(std::make_shared<PartitionedTable>(
        PartitionedTable::FromDataFrame(scan->table, accumulated, 1)));
    ExactEngine engine(&scratch);
    DataFrame result = engine.Execute(plan);

    // Naive linear scale-up of sums and counts (1/t); avg/min/max pass
    // through unscaled.
    if (t < 1.0) {
      const Schema& schema = result.schema();
      for (const auto& agg : agg_node->aggs) {
        size_t idx = schema.FindField(agg.output);
        if (idx == Schema::npos) continue;
        Column* col = result.mutable_column(idx);
        if (agg.func == AggFunc::kSum) {
          if (col->type() == ValueType::kFloat64) {
            for (auto& v : *col->mutable_doubles()) v /= t;
          } else {
            for (auto& v : *col->mutable_ints()) {
              v = static_cast<int64_t>(std::llround(v / t));
            }
          }
        } else if (agg.func == AggFunc::kCount) {
          for (auto& v : *col->mutable_ints()) {
            v = static_cast<int64_t>(std::llround(v / t));
          }
        }
      }
    }

    OlaState state;
    state.frame = std::make_shared<DataFrame>(std::move(result));
    state.progress = t;
    state.is_final = is_final;
    state.elapsed_seconds = clock.ElapsedSeconds();
    on_state(state);
  }
}

}  // namespace wake
