// Logical query plans.
//
// A plan is a tree of relational operators (the paper's "execution graph",
// §7.1) shared by every engine in this repo: the Wake OLA engine compiles
// it to pipelined execution nodes, the exact baseline evaluates it
// all-at-once, and tests compare the two. Plans carry no engine state; all
// OLA-specific reasoning (Case 1/2/3 classification, §2.2) derives from the
// inferred plan properties: schema, primary/clustering keys, and attribute
// mutability.
#ifndef WAKE_PLAN_PLAN_H_
#define WAKE_PLAN_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "frame/expr.h"

namespace wake {

enum class PlanOp : uint8_t {
  kScan,
  kMap,
  kFilter,
  kJoin,
  kAggregate,
  kSortLimit,  // order-by with optional limit (limit==0 means no limit)
};

enum class JoinType : uint8_t {
  kInner,
  kLeft,
  kSemi,   // left rows with at least one match; left columns only
  kAnti,   // left rows with no match; left columns only
  kCross,  // broadcast join: right side must produce exactly one row
};

/// Aggregate functions (Table 2 of the paper).
enum class AggFunc : uint8_t {
  kSum,
  kCount,      // count of non-null inputs (count(*) = count over any key col)
  kAvg,
  kMin,
  kMax,
  kCountDistinct,
  kVar,     // population variance
  kStddev,  // population standard deviation
  kMedian,  // exact sample median; OLA estimator is the identity (§5.3
            // order statistics), intrinsic state keeps the group's values
};

const char* AggFuncName(AggFunc f);

/// A named projection expression (map output column).
struct NamedExpr {
  std::string name;
  ExprPtr expr;
};

/// One aggregate: func(input column) AS output. `input` empty = count(*).
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  std::string input;
  std::string output;
};

struct PlanNode;
using PlanNodePtr = std::shared_ptr<const PlanNode>;

/// A single operator in the plan tree.
struct PlanNode {
  PlanOp op = PlanOp::kScan;
  std::vector<PlanNodePtr> inputs;
  std::string label;  // for traces / Fig 13

  // kScan
  std::string table;
  /// Columns to read from the table, in table-schema order; empty = all.
  /// Set by the optimizer's scan-projection pass and lowered by every
  /// engine so unused columns are never materialized.
  std::vector<std::string> columns;
  /// Advisory pruning predicate set by the optimizer's push-scan-filters
  /// pass: a copy of the Filter directly above the scan (which stays in
  /// the plan as the residual). Readers over synopsis-carrying storage
  /// (wakeblock) use it to skip whole blocks it refutes; engines without
  /// synopses ignore it, so results never depend on it.
  ExprPtr scan_filter;

  // kMap: if append_input is true, output = input columns + projections;
  // otherwise output = projections only.
  std::vector<NamedExpr> projections;
  bool append_input = false;

  // kFilter
  ExprPtr predicate;

  // kJoin: equi-join on parallel key lists (empty lists only for kCross).
  JoinType join_type = JoinType::kInner;
  std::vector<std::string> left_keys;
  std::vector<std::string> right_keys;

  // kAggregate
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggs;

  // kSortLimit
  std::vector<SortKey> sort_keys;
  size_t limit = 0;  // 0 = unlimited
};

/// Fluent plan builder. Cheap value type wrapping a PlanNodePtr.
class Plan {
 public:
  Plan() = default;
  explicit Plan(PlanNodePtr node) : node_(std::move(node)) {}

  /// Leaf: read a named table from the catalog. A non-empty `columns`
  /// list restricts the scan to those columns (projected read).
  static Plan Scan(std::string table, std::vector<std::string> columns = {});

  /// Projection replacing the schema with `projections`.
  Plan Map(std::vector<NamedExpr> projections) const;

  /// Keeps all input columns and appends `projections`.
  Plan Derive(std::vector<NamedExpr> projections) const;

  /// Keeps only the named input columns (pure column selection).
  Plan Project(const std::vector<std::string>& columns) const;

  Plan Filter(ExprPtr predicate) const;

  Plan Join(const Plan& right, JoinType type,
            std::vector<std::string> left_keys,
            std::vector<std::string> right_keys) const;

  /// Broadcast join against a single-row subplan (scalar subquery).
  Plan CrossJoin(const Plan& right) const;

  Plan Aggregate(std::vector<std::string> group_by,
                 std::vector<AggSpec> aggs) const;

  Plan Sort(std::vector<SortKey> keys, size_t limit = 0) const;

  Plan WithLabel(std::string label) const;

  const PlanNodePtr& node() const { return node_; }

 private:
  PlanNodePtr node_;
};

/// Convenience AggSpec factories.
inline AggSpec Sum(std::string input, std::string output) {
  return {AggFunc::kSum, std::move(input), std::move(output)};
}
inline AggSpec Count(std::string output) {  // count(*)
  return {AggFunc::kCount, "", std::move(output)};
}
inline AggSpec CountCol(std::string input, std::string output) {
  return {AggFunc::kCount, std::move(input), std::move(output)};
}
inline AggSpec Avg(std::string input, std::string output) {
  return {AggFunc::kAvg, std::move(input), std::move(output)};
}
inline AggSpec Min(std::string input, std::string output) {
  return {AggFunc::kMin, std::move(input), std::move(output)};
}
inline AggSpec Max(std::string input, std::string output) {
  return {AggFunc::kMax, std::move(input), std::move(output)};
}
inline AggSpec CountDistinct(std::string input, std::string output) {
  return {AggFunc::kCountDistinct, std::move(input), std::move(output)};
}
inline AggSpec VarOf(std::string input, std::string output) {
  return {AggFunc::kVar, std::move(input), std::move(output)};
}
inline AggSpec StddevOf(std::string input, std::string output) {
  return {AggFunc::kStddev, std::move(input), std::move(output)};
}
inline AggSpec MedianOf(std::string input, std::string output) {
  return {AggFunc::kMedian, std::move(input), std::move(output)};
}

/// Renders the plan tree as an indented string (debugging aid).
std::string PlanToString(const PlanNodePtr& node, int indent = 0);

}  // namespace wake

#endif  // WAKE_PLAN_PLAN_H_
