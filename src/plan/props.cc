#include "plan/props.h"

#include <algorithm>

#include "common/error.h"

namespace wake {

namespace {

// Keeps a key list only if every named column survives in `schema`.
std::vector<std::string> KeepKeyIfPresent(const std::vector<std::string>& key,
                                          const Schema& schema) {
  for (const auto& k : key) {
    if (!schema.HasField(k)) return {};
  }
  return key;
}

bool RequiresNumeric(AggFunc f) {
  return f == AggFunc::kSum || f == AggFunc::kAvg || f == AggFunc::kVar ||
         f == AggFunc::kStddev || f == AggFunc::kMedian;
}

}  // namespace

Schema JoinOutputSchema(const Schema& left, const Schema& right,
                        const std::vector<std::string>& right_keys,
                        JoinType type) {
  Schema out;
  for (const auto& f : left.fields()) out.AddField(f);
  if (type == JoinType::kSemi || type == JoinType::kAnti) return out;
  for (const auto& f : right.fields()) {
    if (std::find(right_keys.begin(), right_keys.end(), f.name) !=
        right_keys.end()) {
      continue;  // equal to the left key column; dropped
    }
    CheckPlan(!out.HasField(f.name),
             "join output column collision: '" + f.name +
                 "' (rename one side before joining)");
    out.AddField(f);
  }
  return out;
}

Schema AggOutputSchema(const Schema& input,
                       const std::vector<std::string>& group_by,
                       const std::vector<AggSpec>& aggs) {
  Schema out;
  for (const auto& g : group_by) {
    Field f = input.field(input.FieldIndex(g));
    f.mutable_attr = false;  // group keys are constant attributes
    out.AddField(f);
  }
  for (const auto& a : aggs) {
    ValueType in_type = ValueType::kInt64;
    if (!a.input.empty()) {
      in_type = input.field(input.FieldIndex(a.input)).type;
      CheckPlan(!RequiresNumeric(a.func) || IsNumeric(in_type),
               std::string(AggFuncName(a.func)) + "(" + a.input +
                   ") over non-numeric column");
    } else {
      CheckPlan(a.func == AggFunc::kCount,
               "only count() supports a missing input column");
    }
    ValueType out_type;
    switch (a.func) {
      case AggFunc::kCount:
      case AggFunc::kCountDistinct:
        out_type = ValueType::kInt64;
        break;
      case AggFunc::kMin:
      case AggFunc::kMax:
        out_type = in_type;
        break;
      case AggFunc::kSum:
        out_type = in_type == ValueType::kInt64 ? ValueType::kInt64
                                                : ValueType::kFloat64;
        break;
      default:  // avg, var, stddev
        out_type = ValueType::kFloat64;
        break;
    }
    CheckPlan(!out.HasField(a.output),
             "duplicate aggregate output name '" + a.output + "'");
    out.AddField(Field(a.output, out_type, /*mut=*/true));
  }
  out.set_primary_key(group_by);
  return out;
}

PlanProps InferProps(const PlanNodePtr& node, const Catalog& catalog) {
  CheckPlan(node != nullptr, "null plan node");
  switch (node->op) {
    case PlanOp::kScan: {
      PlanProps props;
      const Schema& full = catalog.GetSchema(node->table);
      props.schema = node->columns.empty() ? full : full.Select(node->columns);
      if (node->scan_filter != nullptr) {
        std::set<std::string> used;
        node->scan_filter->CollectColumns(&used);
        for (const auto& c : used) {
          CheckPlan(props.schema.HasField(c),
                    "scan filter reads column '" + c +
                        "' not produced by the scan");
        }
      }
      props.mode = EvolveMode::kAppend;
      return props;
    }

    case PlanOp::kMap: {
      PlanProps in = InferProps(node->inputs[0], catalog);
      PlanProps props;
      props.mode = in.mode;
      Schema out;
      if (node->append_input) {
        for (const auto& f : in.schema.fields()) out.AddField(f);
      }
      for (const auto& p : node->projections) {
        CheckPlan(!out.HasField(p.name),
                 "duplicate map output column '" + p.name + "'");
        Field f(p.name, p.expr->ResultType(in.schema),
                p.expr->ReadsMutable(in.schema));
        out.AddField(f);
      }
      out.set_primary_key(KeepKeyIfPresent(in.schema.primary_key(), out));
      out.set_clustering_key(
          KeepKeyIfPresent(in.schema.clustering_key(), out));
      props.schema = std::move(out);
      return props;
    }

    case PlanOp::kFilter: {
      PlanProps props = InferProps(node->inputs[0], catalog);
      // Validate the predicate against the schema (throws on bad columns).
      node->predicate->ResultType(props.schema);
      // Filtering on a mutable attribute is a Case 3 operation (§2.3): it
      // is only well-defined over refresh-mode inputs, which is guaranteed
      // by construction (mutable attributes arise only from shuffle
      // aggregations, whose outputs are refresh-mode).
      CheckPlan(!node->predicate->ReadsMutable(props.schema) ||
                   props.mode == EvolveMode::kRefresh,
               "filter on mutable attribute over an append-mode input");
      return props;
    }

    case PlanOp::kJoin: {
      PlanProps left = InferProps(node->inputs[0], catalog);
      PlanProps right = InferProps(node->inputs[1], catalog);
      for (const auto& k : node->left_keys) left.schema.FieldIndex(k);
      for (const auto& k : node->right_keys) right.schema.FieldIndex(k);
      PlanProps props;
      props.schema = JoinOutputSchema(left.schema, right.schema,
                                      node->right_keys, node->join_type);
      props.schema.set_primary_key(
          KeepKeyIfPresent(left.schema.primary_key(), props.schema));
      props.schema.set_clustering_key(
          KeepKeyIfPresent(left.schema.clustering_key(), props.schema));
      props.mode = (left.mode == EvolveMode::kRefresh ||
                    right.mode == EvolveMode::kRefresh)
                       ? EvolveMode::kRefresh
                       : EvolveMode::kAppend;
      return props;
    }

    case PlanOp::kAggregate: {
      PlanProps in = InferProps(node->inputs[0], catalog);
      PlanProps props;
      props.schema = AggOutputSchema(in.schema, node->group_by, node->aggs);
      bool local = in.mode == EvolveMode::kAppend &&
                   in.schema.ClusteringContainedIn(node->group_by);
      if (local) {
        // Case 1: groups complete within partition boundaries; outputs are
        // constant attributes appended incrementally.
        props.mode = EvolveMode::kAppend;
        props.needs_inference = false;
        for (size_t i = 0; i < props.schema.num_fields(); ++i) {
          props.schema.mutable_field(i)->mutable_attr = false;
        }
        props.schema.set_clustering_key(in.schema.clustering_key());
      } else {
        // Case 2: shuffle aggregation with growth-based inference.
        props.mode = EvolveMode::kRefresh;
        props.needs_inference = true;
      }
      return props;
    }

    case PlanOp::kSortLimit: {
      PlanProps props = InferProps(node->inputs[0], catalog);
      for (const auto& k : node->sort_keys) {
        props.schema.FieldIndex(k.column);
      }
      props.mode = EvolveMode::kRefresh;  // Case 3: recompute per state
      props.needs_inference = false;
      std::vector<std::string> cluster;
      for (const auto& k : node->sort_keys) cluster.push_back(k.column);
      props.schema.set_clustering_key(cluster);
      return props;
    }
  }
  throw Error("unreachable plan op", ErrorCategory::kPlan);
}

}  // namespace wake
