// Logical plan optimizer: an ordered list of rewrite passes run to
// fixpoint over the PlanNode DAG.
//
// The paper hand-tunes its 22 TPC-H plans (filters directly above scans,
// explicit Project() calls after every scan); the SQL front end produces
// naive plans (filters above all joins, scans materializing every column).
// These passes close that gap so any parsed query runs at hand-tuned
// speed:
//
//   fold-constants      evaluates literal-only subexpressions and removes
//                       trivially-true filters
//   push-filters        splits conjunctions and pushes each conjunct
//                       through maps / joins / aggregations down to the
//                       operator that owns its columns (respecting
//                       Left/Semi/Anti/Cross join semantics)
//   prune-projections   computes the required-column set top-down and
//                       narrows every Map (a Derive whose pass-through
//                       columns are partly unused becomes an explicit Map)
//   prune-aggregates    drops aggregate outputs no parent consumes (SQL
//                       derived tables routinely compute more aggregates
//                       than the outer query reads); group keys are never
//                       touched and at least one aggregate always
//                       survives, so the operator's grouping semantics
//                       are unchanged
//   project-scans       pushes the required-column set into kScan nodes so
//                       storage below never materializes unused columns
//   push-scan-filters   copies each Filter sitting directly above a scan
//                       into the scan's advisory scan_filter (the Filter
//                       stays as the residual), so synopsis-carrying
//                       storage can skip whole blocks the predicate
//                       refutes before decoding them
//
// Guarantees: the optimized plan produces results identical to the input
// plan on every engine, the root output schema (names, order, types) is
// preserved exactly, and subplan sharing (one PlanNode object reachable
// through several parents, §7.3) is preserved. Passes return original
// subtree pointers where nothing changed.
#ifndef WAKE_PLAN_OPTIMIZER_H_
#define WAKE_PLAN_OPTIMIZER_H_

#include <functional>
#include <string>
#include <vector>

#include "plan/plan.h"
#include "storage/partitioned_table.h"

namespace wake {

/// One rewrite pass: plan DAG + catalog in, semantically equivalent plan
/// out.
using PlanPass =
    std::function<PlanNodePtr(const PlanNodePtr&, const Catalog&)>;

struct OptimizerPass {
  std::string name;
  PlanPass run;
};

/// The default pass list, in execution order (see file comment).
const std::vector<OptimizerPass>& DefaultPasses();

/// Runs the default passes in order, repeating the whole list until a full
/// round leaves the plan unchanged (bounded by a small round limit).
PlanNodePtr Optimize(const PlanNodePtr& plan, const Catalog& catalog);
Plan Optimize(const Plan& plan, const Catalog& catalog);

/// --- individual passes (exposed for targeted plan-shape tests) ---
PlanNodePtr FoldConstantsPass(const PlanNodePtr& plan, const Catalog& catalog);
PlanNodePtr PushDownFiltersPass(const PlanNodePtr& plan,
                                const Catalog& catalog);
PlanNodePtr PruneProjectionsPass(const PlanNodePtr& plan,
                                 const Catalog& catalog);
PlanNodePtr PruneAggregatesPass(const PlanNodePtr& plan,
                                const Catalog& catalog);
PlanNodePtr ProjectScansPass(const PlanNodePtr& plan, const Catalog& catalog);
PlanNodePtr PushScanFiltersPass(const PlanNodePtr& plan,
                                const Catalog& catalog);

/// Constant-folds one expression tree (returns the original pointer when
/// nothing folds). Exposed for tests.
ExprPtr FoldExpr(const ExprPtr& expr);

}  // namespace wake

#endif  // WAKE_PLAN_OPTIMIZER_H_
