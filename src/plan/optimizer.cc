#include "plan/optimizer.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"
#include "common/strings.h"
#include "plan/props.h"

namespace wake {

namespace {

using NodeMemo = std::unordered_map<const PlanNode*, PlanNodePtr>;

std::shared_ptr<PlanNode> CloneNode(const PlanNode& node) {
  return std::make_shared<PlanNode>(node);
}

// Number of parent edges per node. Nodes with more than one parent are
// shared subplans (§7.3): passes must rewrite them context-free so every
// parent keeps pointing at one object.
std::unordered_map<const PlanNode*, size_t> CountParentEdges(
    const PlanNodePtr& root) {
  std::unordered_map<const PlanNode*, size_t> count;
  std::unordered_set<const PlanNode*> seen;
  std::vector<const PlanNode*> stack = {root.get()};
  while (!stack.empty()) {
    const PlanNode* node = stack.back();
    stack.pop_back();
    if (!seen.insert(node).second) continue;
    for (const auto& in : node->inputs) {
      ++count[in.get()];
      stack.push_back(in.get());
    }
  }
  return count;
}

bool LiteralTruthy(const Value& v) {
  if (v.is_null) return false;
  return IsIntPhysical(v.type) ? v.i != 0 : v.d != 0.0;
}

bool IsLiteral(const ExprPtr& e) { return e->kind() == ExprKind::kLiteral; }

// True when `e` is guaranteed to evaluate to a non-null kBool column
// (what Expr::Eval's logical operators produce). Bare columns and CASE
// branches may carry other types or nulls, so `TRUE AND x -> x` is only a
// lossless rewrite for these kinds.
bool ProducesNonNullBool(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kCompare:
    case ExprKind::kLogic:
    case ExprKind::kNot:
    case ExprKind::kLike:
    case ExprKind::kInList:
    case ExprKind::kIsNull:
      return true;
    default:
      return false;
  }
}

// Rebuilds an expression node of `e`'s kind over new children.
ExprPtr RebuildExpr(const Expr& e, std::vector<ExprPtr> kids) {
  switch (e.kind()) {
    case ExprKind::kArith:
      return Expr::Arith(e.arith_op(), std::move(kids[0]), std::move(kids[1]));
    case ExprKind::kCompare:
      return Expr::Cmp(e.cmp_op(), std::move(kids[0]), std::move(kids[1]));
    case ExprKind::kLogic:
      return e.logic_op() == LogicOp::kAnd
                 ? Expr::And(std::move(kids[0]), std::move(kids[1]))
                 : Expr::Or(std::move(kids[0]), std::move(kids[1]));
    case ExprKind::kNot:
      return Expr::Not(std::move(kids[0]));
    case ExprKind::kLike:
      return Expr::Like(std::move(kids[0]), e.like_pattern());
    case ExprKind::kInList:
      return Expr::In(std::move(kids[0]), e.in_list());
    case ExprKind::kCase:
      return Expr::Case(std::move(kids[0]), std::move(kids[1]),
                        std::move(kids[2]));
    case ExprKind::kCoalesce:
      return Expr::Coalesce(std::move(kids[0]), e.literal());
    case ExprKind::kSubstr:
      return Expr::Substr(std::move(kids[0]), e.substr_start(),
                          e.substr_len());
    case ExprKind::kYear:
      return Expr::Year(std::move(kids[0]));
    case ExprKind::kIsNull:
      return Expr::IsNull(std::move(kids[0]));
    case ExprKind::kColumn:
    case ExprKind::kLiteral:
      break;
  }
  throw Error("RebuildExpr: leaf expression has no children",
              ErrorCategory::kPlan);
}

}  // namespace

// ---------------------------------------------------------------------------
// Pass 1: constant folding / trivial-predicate elimination
// ---------------------------------------------------------------------------

ExprPtr FoldExpr(const ExprPtr& expr) {
  if (expr->kind() == ExprKind::kColumn ||
      expr->kind() == ExprKind::kLiteral) {
    return expr;
  }
  std::vector<ExprPtr> kids;
  kids.reserve(expr->children().size());
  bool changed = false;
  for (const auto& c : expr->children()) {
    kids.push_back(FoldExpr(c));
    changed |= kids.back() != c;
  }

  // Every folding rule below mirrors Expr::Eval exactly (null handling,
  // type promotion, division by zero) so a folded plan is value-identical
  // to the unfolded one.
  switch (expr->kind()) {
    case ExprKind::kArith: {
      if (!IsLiteral(kids[0]) || !IsLiteral(kids[1])) break;
      const Value& a = kids[0]->literal();
      const Value& b = kids[1]->literal();
      if (a.is_null || b.is_null) break;  // null propagates; keep the tree
      if (!IsNumeric(a.type) || !IsNumeric(b.type)) break;
      bool to_double = expr->arith_op() == ArithOp::kDiv ||
                       a.type == ValueType::kFloat64 ||
                       b.type == ValueType::kFloat64;
      if (to_double) {
        double x = a.AsDouble(), y = b.AsDouble(), r = 0.0;
        switch (expr->arith_op()) {
          case ArithOp::kAdd: r = x + y; break;
          case ArithOp::kSub: r = x - y; break;
          case ArithOp::kMul: r = x * y; break;
          case ArithOp::kDiv: r = y == 0.0 ? 0.0 : x / y; break;
        }
        return Expr::Lit(Value::Float(r));
      }
      int64_t r = 0;
      switch (expr->arith_op()) {
        case ArithOp::kAdd: r = a.i + b.i; break;
        case ArithOp::kSub: r = a.i - b.i; break;
        case ArithOp::kMul: r = a.i * b.i; break;
        case ArithOp::kDiv: break;  // unreachable: kDiv promotes
      }
      return Expr::Lit(Value::Int(r));
    }
    case ExprKind::kCompare: {
      if (!IsLiteral(kids[0]) || !IsLiteral(kids[1])) break;
      const Value& a = kids[0]->literal();
      const Value& b = kids[1]->literal();
      if (a.is_null || b.is_null) return Expr::Lit(Value::Bool(false));
      int c;
      if (a.type == ValueType::kString && b.type == ValueType::kString) {
        c = a.s.compare(b.s) < 0 ? -1 : (a.s == b.s ? 0 : 1);
      } else if (IsNumeric(a.type) && IsNumeric(b.type)) {
        if (IsIntPhysical(a.type) && IsIntPhysical(b.type)) {
          c = a.i < b.i ? -1 : (a.i == b.i ? 0 : 1);
        } else {
          double x = a.AsDouble(), y = b.AsDouble();
          c = x < y ? -1 : (x == y ? 0 : 1);
        }
      } else {
        break;  // string vs numeric: leave for runtime to reject
      }
      bool r = false;
      switch (expr->cmp_op()) {
        case CompareOp::kEq: r = c == 0; break;
        case CompareOp::kNe: r = c != 0; break;
        case CompareOp::kLt: r = c < 0; break;
        case CompareOp::kLe: r = c <= 0; break;
        case CompareOp::kGt: r = c > 0; break;
        case CompareOp::kGe: r = c >= 0; break;
      }
      return Expr::Lit(Value::Bool(r));
    }
    case ExprKind::kLogic: {
      // Logical operators treat null as false (Expr::Eval contract), so a
      // literal side either decides the result or disappears. Dropping
      // the AND/OR node is only lossless when the surviving side already
      // produces exactly what the logic node would (non-null kBool) —
      // e.g. `TRUE AND l_orderkey` coerces to bool, bare l_orderkey does
      // not.
      bool is_and = expr->logic_op() == LogicOp::kAnd;
      if (IsLiteral(kids[0])) {
        bool t = LiteralTruthy(kids[0]->literal());
        if (is_and && !t) return Expr::Lit(Value::Bool(false));
        if (!is_and && t) return Expr::Lit(Value::Bool(true));
        if (ProducesNonNullBool(kids[1])) return kids[1];
        break;
      }
      if (IsLiteral(kids[1])) {
        bool t = LiteralTruthy(kids[1]->literal());
        if (is_and && !t) return Expr::Lit(Value::Bool(false));
        if (!is_and && t) return Expr::Lit(Value::Bool(true));
        if (ProducesNonNullBool(kids[0])) return kids[0];
        break;
      }
      break;
    }
    case ExprKind::kNot:
      if (IsLiteral(kids[0])) {
        return Expr::Lit(Value::Bool(!LiteralTruthy(kids[0]->literal())));
      }
      break;
    case ExprKind::kIsNull:
      if (IsLiteral(kids[0])) {
        return Expr::Lit(Value::Bool(kids[0]->literal().is_null));
      }
      break;
    case ExprKind::kLike:
      if (IsLiteral(kids[0])) {
        const Value& v = kids[0]->literal();
        if (v.is_null) return Expr::Lit(Value::Bool(false));
        // Non-string input is a type error Eval reports loudly; leave the
        // tree so runtime behavior is unchanged.
        if (v.type != ValueType::kString) break;
        return Expr::Lit(Value::Bool(LikeMatch(v.s, expr->like_pattern())));
      }
      break;
    case ExprKind::kInList:
      if (IsLiteral(kids[0])) {
        const Value& v = kids[0]->literal();
        if (v.is_null) return Expr::Lit(Value::Bool(false));
        for (const auto& cand : expr->in_list()) {
          if (v == cand) return Expr::Lit(Value::Bool(true));
        }
        return Expr::Lit(Value::Bool(false));
      }
      break;
    case ExprKind::kCoalesce:
      if (IsLiteral(kids[0])) {
        const Value& v = kids[0]->literal();
        if (!v.is_null) return kids[0];
        // Null input: the fallback only substitutes losslessly when its
        // type matches the declared (input) result type.
        if (expr->literal().type == v.type) return Expr::Lit(expr->literal());
      }
      break;
    case ExprKind::kYear:
      if (IsLiteral(kids[0]) && !kids[0]->literal().is_null &&
          IsIntPhysical(kids[0]->literal().type)) {
        return Expr::Lit(Value::Int(ExtractYear(kids[0]->literal().i)));
      }
      break;
    case ExprKind::kSubstr:
      if (IsLiteral(kids[0])) {
        const Value& v = kids[0]->literal();
        if (!v.is_null && v.type == ValueType::kString) {
          size_t start = static_cast<size_t>(
              std::max<int64_t>(expr->substr_start() - 1, 0));
          std::string s = start >= v.s.size()
                              ? ""
                              : v.s.substr(start, static_cast<size_t>(
                                                      expr->substr_len()));
          return Expr::Lit(Value::Str(std::move(s)));
        }
      }
      break;
    case ExprKind::kCase:
      // Folding a literal condition to one branch could change the result
      // type (branches promote jointly); left alone on purpose.
      break;
    case ExprKind::kColumn:
    case ExprKind::kLiteral:
      break;
  }
  return changed ? RebuildExpr(*expr, std::move(kids)) : expr;
}

namespace {

PlanNodePtr FoldNode(const PlanNodePtr& node, NodeMemo* memo) {
  auto it = memo->find(node.get());
  if (it != memo->end()) return it->second;
  std::vector<PlanNodePtr> inputs;
  inputs.reserve(node->inputs.size());
  bool changed = false;
  for (const auto& in : node->inputs) {
    inputs.push_back(FoldNode(in, memo));
    changed |= inputs.back() != in;
  }

  PlanNodePtr out = node;
  switch (node->op) {
    case PlanOp::kFilter: {
      ExprPtr folded = FoldExpr(node->predicate);
      if (IsLiteral(folded) && LiteralTruthy(folded->literal())) {
        out = inputs[0];  // trivially true: drop the filter
        break;
      }
      if (folded != node->predicate || changed) {
        auto n = CloneNode(*node);
        n->inputs = std::move(inputs);
        n->predicate = std::move(folded);
        out = n;
      }
      break;
    }
    case PlanOp::kMap: {
      std::vector<NamedExpr> projections;
      projections.reserve(node->projections.size());
      bool exprs_changed = false;
      for (const auto& p : node->projections) {
        ExprPtr folded = FoldExpr(p.expr);
        exprs_changed |= folded != p.expr;
        projections.push_back({p.name, std::move(folded)});
      }
      if (exprs_changed || changed) {
        auto n = CloneNode(*node);
        n->inputs = std::move(inputs);
        n->projections = std::move(projections);
        out = n;
      }
      break;
    }
    default:
      if (changed) {
        auto n = CloneNode(*node);
        n->inputs = std::move(inputs);
        out = n;
      }
      break;
  }
  (*memo)[node.get()] = out;
  return out;
}

}  // namespace

PlanNodePtr FoldConstantsPass(const PlanNodePtr& plan, const Catalog&) {
  NodeMemo memo;
  return FoldNode(plan, &memo);
}

// ---------------------------------------------------------------------------
// Pass 2: filter pushdown
// ---------------------------------------------------------------------------

namespace {

void SplitConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e->kind() == ExprKind::kLogic && e->logic_op() == LogicOp::kAnd) {
    SplitConjuncts(e->children()[0], out);
    SplitConjuncts(e->children()[1], out);
    return;
  }
  out->push_back(e);
}

ExprPtr AndChain(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr result = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    result = Expr::And(std::move(result), conjuncts[i]);
  }
  return result;
}

PlanNodePtr WrapFilter(PlanNodePtr node, const std::vector<ExprPtr>& stays) {
  if (stays.empty()) return node;
  auto filter = std::make_shared<PlanNode>();
  filter->op = PlanOp::kFilter;
  filter->label = "filter";
  filter->predicate = AndChain(stays);
  filter->inputs = {std::move(node)};
  return filter;
}

bool AllColumnsIn(const std::set<std::string>& cols, const Schema& schema) {
  for (const auto& c : cols) {
    if (!schema.HasField(c)) return false;
  }
  return true;
}

// Rewrites `e` so every column reference is resolved through the Map's
// projections / pass-through columns. Returns null when some reference is
// not losslessly rewritable (non-trivial projection expression).
ExprPtr RewriteThroughMap(const ExprPtr& e, const PlanNode& map,
                          const Schema& input_schema) {
  if (e->kind() == ExprKind::kLiteral) return e;
  if (e->kind() == ExprKind::kColumn) {
    for (const auto& p : map.projections) {
      if (p.name != e->column_name()) continue;
      // Only substitute trivial projections (column refs / literals):
      // duplicating a computed expression below the map would evaluate it
      // twice.
      if (p.expr->kind() == ExprKind::kColumn ||
          p.expr->kind() == ExprKind::kLiteral) {
        return p.expr;
      }
      return nullptr;
    }
    // Not produced by a projection: usable below only for pass-through
    // (Derive) maps where the input supplies it.
    if (map.append_input && input_schema.HasField(e->column_name())) return e;
    return nullptr;
  }
  std::vector<ExprPtr> kids;
  kids.reserve(e->children().size());
  bool changed = false;
  for (const auto& c : e->children()) {
    ExprPtr r = RewriteThroughMap(c, map, input_schema);
    if (r == nullptr) return nullptr;
    changed |= r != c;
    kids.push_back(std::move(r));
  }
  return changed ? RebuildExpr(*e, std::move(kids)) : e;
}

struct PushCtx {
  const Catalog* catalog;
  std::unordered_map<const PlanNode*, size_t> parents;
  NodeMemo memo;  // rewrites of nodes entered with no pending conjuncts
  std::unordered_map<const PlanNode*, Schema> schemas;
};

bool IsShared(const PushCtx& ctx, const PlanNode* node) {
  auto it = ctx.parents.find(node);
  return it != ctx.parents.end() && it->second > 1;
}

// Output schema of `node`, inferred once per pass (InferProps recurses
// over the whole subtree on every call; joins/maps ask for their inputs'
// schemas repeatedly).
const Schema& SchemaOf(const PlanNodePtr& node, PushCtx* ctx) {
  auto it = ctx->schemas.find(node.get());
  if (it != ctx->schemas.end()) return it->second;
  return ctx->schemas
      .emplace(node.get(), InferProps(node, *ctx->catalog).schema)
      .first->second;
}

// Rewrites `node`, absorbing `pending` conjuncts (addressed to this
// node's output) as deep as legal. Callers never pass pending conjuncts
// into shared nodes.
PlanNodePtr Push(const PlanNodePtr& node, std::vector<ExprPtr> pending,
                 PushCtx* ctx) {
  if (pending.empty()) {
    auto it = ctx->memo.find(node.get());
    if (it != ctx->memo.end()) return it->second;
  }
  PlanNodePtr out;
  switch (node->op) {
    case PlanOp::kScan:
      out = WrapFilter(node, pending);
      break;

    case PlanOp::kFilter: {
      std::vector<ExprPtr> conjuncts;
      SplitConjuncts(node->predicate, &conjuncts);
      conjuncts.insert(conjuncts.end(), pending.begin(), pending.end());
      const PlanNodePtr& child = node->inputs[0];
      if (IsShared(*ctx, child.get())) {
        PlanNodePtr new_child = Push(child, {}, ctx);
        if (new_child == child && pending.empty()) {
          out = node;
        } else {
          out = WrapFilter(std::move(new_child), conjuncts);
        }
      } else {
        out = Push(child, std::move(conjuncts), ctx);
      }
      break;
    }

    case PlanOp::kMap: {
      const Schema& input_schema = SchemaOf(node->inputs[0], ctx);
      std::vector<ExprPtr> below, stays;
      bool child_shared = IsShared(*ctx, node->inputs[0].get());
      for (const auto& c : pending) {
        ExprPtr rewritten =
            child_shared ? nullptr
                         : RewriteThroughMap(c, *node, input_schema);
        if (rewritten != nullptr) {
          below.push_back(std::move(rewritten));
        } else {
          stays.push_back(c);
        }
      }
      PlanNodePtr new_child =
          child_shared ? Push(node->inputs[0], {}, ctx)
                       : Push(node->inputs[0], std::move(below), ctx);
      if (new_child == node->inputs[0] && stays.empty() && pending.empty()) {
        out = node;
      } else {
        auto n = CloneNode(*node);
        n->inputs = {std::move(new_child)};
        out = WrapFilter(std::move(n), stays);
      }
      break;
    }

    case PlanOp::kJoin: {
      const Schema& left_schema = SchemaOf(node->inputs[0], ctx);
      const Schema& right_schema = SchemaOf(node->inputs[1], ctx);
      bool left_shared = IsShared(*ctx, node->inputs[0].get());
      bool right_shared = IsShared(*ctx, node->inputs[1].get());
      // Right-side pushdown is legal only for inner joins: a Left join
      // must null-pad (not drop) unmatched probe rows, Semi/Anti compare
      // against the full build side, and a Cross join's right side must
      // keep producing exactly one row.
      bool can_push_right =
          node->join_type == JoinType::kInner && !right_shared;
      std::vector<ExprPtr> left_down, right_down, stays;
      for (const auto& c : pending) {
        std::set<std::string> cols;
        c->CollectColumns(&cols);
        if (!left_shared && AllColumnsIn(cols, left_schema)) {
          left_down.push_back(c);
        } else if (can_push_right && AllColumnsIn(cols, right_schema)) {
          right_down.push_back(c);
        } else {
          stays.push_back(c);
        }
      }
      PlanNodePtr new_left = Push(node->inputs[0], std::move(left_down), ctx);
      PlanNodePtr new_right =
          Push(node->inputs[1], std::move(right_down), ctx);
      if (new_left == node->inputs[0] && new_right == node->inputs[1] &&
          pending.empty()) {
        out = node;
      } else {
        auto n = CloneNode(*node);
        n->inputs = {std::move(new_left), std::move(new_right)};
        out = WrapFilter(std::move(n), stays);
      }
      break;
    }

    case PlanOp::kAggregate: {
      bool child_shared = IsShared(*ctx, node->inputs[0].get());
      std::vector<ExprPtr> below, stays;
      for (const auto& c : pending) {
        std::set<std::string> cols;
        c->CollectColumns(&cols);
        // Only group-key predicates commute with aggregation: every row of
        // a group shares its key, so filtering keys below removes exactly
        // the groups filtered above. Aggregate outputs (HAVING) stay.
        bool group_only =
            !child_shared && !cols.empty() &&
            std::all_of(cols.begin(), cols.end(), [&](const std::string& c2) {
              return std::find(node->group_by.begin(), node->group_by.end(),
                               c2) != node->group_by.end();
            });
        if (group_only) {
          below.push_back(c);
        } else {
          stays.push_back(c);
        }
      }
      PlanNodePtr new_child =
          child_shared ? Push(node->inputs[0], {}, ctx)
                       : Push(node->inputs[0], std::move(below), ctx);
      if (new_child == node->inputs[0] && pending.empty()) {
        out = node;
      } else {
        auto n = CloneNode(*node);
        n->inputs = {std::move(new_child)};
        out = WrapFilter(std::move(n), stays);
      }
      break;
    }

    case PlanOp::kSortLimit: {
      bool child_shared = IsShared(*ctx, node->inputs[0].get());
      // Filters commute with a pure sort, but not with a limit (dropping
      // rows before the cut changes which rows survive it).
      bool can_push = node->limit == 0 && !child_shared;
      bool had_pending = !pending.empty();
      std::vector<ExprPtr> below, stays;
      if (can_push) {
        below = std::move(pending);
      } else {
        stays = std::move(pending);
      }
      PlanNodePtr new_child = Push(node->inputs[0], std::move(below), ctx);
      if (new_child == node->inputs[0] && !had_pending) {
        out = node;
      } else {
        auto n = CloneNode(*node);
        n->inputs = {std::move(new_child)};
        out = WrapFilter(std::move(n), stays);
      }
      break;
    }
  }
  if (pending.empty()) ctx->memo[node.get()] = out;
  return out;
}

}  // namespace

PlanNodePtr PushDownFiltersPass(const PlanNodePtr& plan,
                                const Catalog& catalog) {
  PushCtx ctx;
  ctx.catalog = &catalog;
  ctx.parents = CountParentEdges(plan);
  return Push(plan, {}, &ctx);
}

// ---------------------------------------------------------------------------
// Passes 3 & 4: projection pruning and scan projection
// ---------------------------------------------------------------------------

namespace {

using ColumnSet = std::set<std::string>;

struct PruneCtx {
  const Catalog* catalog;
  bool narrow_maps = false;
  bool project_scans = false;
  bool prune_aggs = false;
  std::unordered_map<const PlanNode*, Schema> schema;
  std::unordered_map<const PlanNode*, ColumnSet> required;
  NodeMemo memo;
};

void CollectSchemas(const PlanNodePtr& node, PruneCtx* ctx) {
  if (ctx->schema.count(node.get())) return;
  for (const auto& in : node->inputs) CollectSchemas(in, ctx);
  ctx->schema[node.get()] = InferProps(node, *ctx->catalog).schema;
}

// Reverse DFS postorder: every parent precedes its children, so required
// sets accumulate the union over all parents before a node is expanded.
void TopoOrder(const PlanNodePtr& node,
               std::unordered_set<const PlanNode*>* seen,
               std::vector<const PlanNode*>* postorder) {
  if (!seen->insert(node.get()).second) return;
  for (const auto& in : node->inputs) TopoOrder(in, seen, postorder);
  postorder->push_back(node.get());
}

// The projections of a Map that survive pruning under `req`. Never empty:
// a parent that needs only the row count keeps the first projection.
std::vector<size_t> SurvivingProjections(const PlanNode& node,
                                         const ColumnSet& req) {
  std::vector<size_t> keep;
  for (size_t i = 0; i < node.projections.size(); ++i) {
    if (req.count(node.projections[i].name)) keep.push_back(i);
  }
  if (keep.empty() && !node.projections.empty()) keep.push_back(0);
  return keep;
}

void AddExprColumns(const ExprPtr& e, ColumnSet* out) {
  e->CollectColumns(out);
}

// The aggregates of an Aggregate node that survive pruning under `req`.
// Group keys are part of the output schema but live in node.group_by, so
// only agg outputs are candidates. Never empty: an Aggregate must keep at
// least one aggregate (a parent may consume only the group keys), so the
// first is retained — mirroring SurvivingProjections.
std::vector<size_t> SurvivingAggs(const PlanNode& node, const ColumnSet& req) {
  std::vector<size_t> keep;
  for (size_t i = 0; i < node.aggs.size(); ++i) {
    if (req.count(node.aggs[i].output)) keep.push_back(i);
  }
  if (keep.empty() && !node.aggs.empty()) keep.push_back(0);
  return keep;
}

// Propagates this node's required set into its inputs' required sets.
void PropagateRequired(const PlanNode* node, PruneCtx* ctx) {
  const ColumnSet& req = ctx->required[node];
  std::vector<ColumnSet*> input_req;
  for (const auto& in : node->inputs) {
    input_req.push_back(&ctx->required[in.get()]);
  }
  switch (node->op) {
    case PlanOp::kScan:
      break;
    case PlanOp::kMap: {
      const Schema& in_schema = ctx->schema[node->inputs[0].get()];
      if (node->append_input) {
        if (ctx->narrow_maps) {
          for (const auto& f : in_schema.fields()) {
            if (req.count(f.name)) input_req[0]->insert(f.name);
          }
          for (size_t i : SurvivingProjections(*node, req)) {
            AddExprColumns(node->projections[i].expr, input_req[0]);
          }
        } else {
          // An un-narrowed Derive republishes its whole input.
          for (const auto& f : in_schema.fields()) {
            input_req[0]->insert(f.name);
          }
          for (const auto& p : node->projections) {
            AddExprColumns(p.expr, input_req[0]);
          }
        }
      } else {
        if (ctx->narrow_maps) {
          for (size_t i : SurvivingProjections(*node, req)) {
            AddExprColumns(node->projections[i].expr, input_req[0]);
          }
        } else {
          for (const auto& p : node->projections) {
            AddExprColumns(p.expr, input_req[0]);
          }
        }
      }
      break;
    }
    case PlanOp::kFilter: {
      // Union, never assign: the input may be shared and already carry
      // requirements from another parent.
      input_req[0]->insert(req.begin(), req.end());
      AddExprColumns(node->predicate, input_req[0]);
      break;
    }
    case PlanOp::kJoin: {
      const Schema& left = ctx->schema[node->inputs[0].get()];
      const Schema& right = ctx->schema[node->inputs[1].get()];
      for (const auto& f : left.fields()) {
        if (req.count(f.name)) input_req[0]->insert(f.name);
      }
      for (const auto& k : node->left_keys) input_req[0]->insert(k);
      if (node->join_type == JoinType::kSemi ||
          node->join_type == JoinType::kAnti) {
        for (const auto& k : node->right_keys) input_req[1]->insert(k);
      } else {
        for (const auto& f : right.fields()) {
          if (req.count(f.name)) input_req[1]->insert(f.name);
        }
        for (const auto& k : node->right_keys) input_req[1]->insert(k);
      }
      break;
    }
    case PlanOp::kAggregate: {
      for (const auto& g : node->group_by) input_req[0]->insert(g);
      if (ctx->prune_aggs) {
        // Only surviving aggregates pin their input columns; the columns
        // feeding dropped aggregates become prunable below this node.
        for (size_t i : SurvivingAggs(*node, req)) {
          const AggSpec& a = node->aggs[i];
          if (!a.input.empty()) input_req[0]->insert(a.input);
        }
      } else {
        for (const auto& a : node->aggs) {
          if (!a.input.empty()) input_req[0]->insert(a.input);
        }
      }
      break;
    }
    case PlanOp::kSortLimit: {
      input_req[0]->insert(req.begin(), req.end());
      for (const auto& k : node->sort_keys) input_req[0]->insert(k.column);
      break;
    }
  }
}

PlanNodePtr PruneRewrite(const PlanNodePtr& node, PruneCtx* ctx) {
  auto it = ctx->memo.find(node.get());
  if (it != ctx->memo.end()) return it->second;
  std::vector<PlanNodePtr> inputs;
  inputs.reserve(node->inputs.size());
  bool changed = false;
  for (const auto& in : node->inputs) {
    inputs.push_back(PruneRewrite(in, ctx));
    changed |= inputs.back() != in;
  }
  const ColumnSet& req = ctx->required[node.get()];

  PlanNodePtr out = node;
  switch (node->op) {
    case PlanOp::kScan: {
      if (!ctx->project_scans) break;
      const Schema& current = ctx->schema[node.get()];
      const Schema& full = ctx->catalog->GetSchema(node->table);
      std::vector<std::string> want;
      for (const auto& f : full.fields()) {
        if (current.HasField(f.name) && req.count(f.name)) {
          want.push_back(f.name);
        }
      }
      if (want.empty()) {
        // Parent needs only the row count (e.g. a bare count(*)); keep the
        // narrowest possible scan: one column.
        want.push_back(current.field(0).name);
      }
      if (want.size() == full.num_fields()) want.clear();  // all = empty
      if (want != node->columns) {
        auto n = CloneNode(*node);
        n->columns = std::move(want);
        out = n;
      }
      break;
    }
    case PlanOp::kMap: {
      if (!ctx->narrow_maps) {
        if (changed) {
          auto n = CloneNode(*node);
          n->inputs = std::move(inputs);
          out = n;
        }
        break;
      }
      std::vector<size_t> keep = SurvivingProjections(*node, req);
      if (node->append_input) {
        const Schema& in_schema = ctx->schema[node->inputs[0].get()];
        bool all_inputs_required = true;
        for (const auto& f : in_schema.fields()) {
          all_inputs_required &= req.count(f.name) > 0;
        }
        if (all_inputs_required && keep.size() == node->projections.size()) {
          if (changed) {
            auto n = CloneNode(*node);
            n->inputs = std::move(inputs);
            out = n;
          }
          break;
        }
        // Narrow the Derive into an explicit Map: required pass-through
        // columns (input order) plus the surviving derived columns.
        std::vector<NamedExpr> projections;
        for (const auto& f : in_schema.fields()) {
          if (req.count(f.name)) {
            projections.push_back({f.name, Expr::Col(f.name)});
          }
        }
        for (size_t i : keep) projections.push_back(node->projections[i]);
        if (projections.empty()) {
          const std::string& first = in_schema.field(0).name;
          projections.push_back({first, Expr::Col(first)});
        }
        auto n = CloneNode(*node);
        n->inputs = std::move(inputs);
        n->projections = std::move(projections);
        n->append_input = false;
        out = n;
        break;
      }
      if (keep.size() == node->projections.size()) {
        if (changed) {
          auto n = CloneNode(*node);
          n->inputs = std::move(inputs);
          out = n;
        }
        break;
      }
      std::vector<NamedExpr> projections;
      for (size_t i : keep) projections.push_back(node->projections[i]);
      auto n = CloneNode(*node);
      n->inputs = std::move(inputs);
      n->projections = std::move(projections);
      out = n;
      break;
    }
    case PlanOp::kAggregate: {
      std::vector<size_t> keep;
      if (ctx->prune_aggs) keep = SurvivingAggs(*node, req);
      if (!ctx->prune_aggs || keep.size() == node->aggs.size()) {
        if (changed) {
          auto n = CloneNode(*node);
          n->inputs = std::move(inputs);
          out = n;
        }
        break;
      }
      std::vector<AggSpec> aggs;
      for (size_t i : keep) aggs.push_back(node->aggs[i]);
      auto n = CloneNode(*node);
      n->inputs = std::move(inputs);
      n->aggs = std::move(aggs);
      out = n;
      break;
    }
    default:
      if (changed) {
        auto n = CloneNode(*node);
        n->inputs = std::move(inputs);
        out = n;
      }
      break;
  }
  ctx->memo[node.get()] = out;
  return out;
}

PlanNodePtr PruneImpl(const PlanNodePtr& plan, const Catalog& catalog,
                      bool narrow_maps, bool project_scans,
                      bool prune_aggs = false) {
  PruneCtx ctx;
  ctx.catalog = &catalog;
  ctx.narrow_maps = narrow_maps;
  ctx.project_scans = project_scans;
  ctx.prune_aggs = prune_aggs;
  CollectSchemas(plan, &ctx);

  // The root's output is the query result: everything is required, which
  // also pins the full schema (names, order) of every schema-transparent
  // operator above the first Map/Aggregate.
  for (const auto& f : ctx.schema[plan.get()].fields()) {
    ctx.required[plan.get()].insert(f.name);
  }
  std::unordered_set<const PlanNode*> seen;
  std::vector<const PlanNode*> postorder;
  TopoOrder(plan, &seen, &postorder);
  for (auto rit = postorder.rbegin(); rit != postorder.rend(); ++rit) {
    PropagateRequired(*rit, &ctx);
  }
  return PruneRewrite(plan, &ctx);
}

}  // namespace

PlanNodePtr PruneProjectionsPass(const PlanNodePtr& plan,
                                 const Catalog& catalog) {
  return PruneImpl(plan, catalog, /*narrow_maps=*/true,
                   /*project_scans=*/false);
}

PlanNodePtr PruneAggregatesPass(const PlanNodePtr& plan,
                                const Catalog& catalog) {
  return PruneImpl(plan, catalog, /*narrow_maps=*/false,
                   /*project_scans=*/false, /*prune_aggs=*/true);
}

PlanNodePtr ProjectScansPass(const PlanNodePtr& plan, const Catalog& catalog) {
  return PruneImpl(plan, catalog, /*narrow_maps=*/false,
                   /*project_scans=*/true);
}

// ---------------------------------------------------------------------------
// Push-scan-filters pass
// ---------------------------------------------------------------------------

namespace {

PlanNodePtr PushScanFiltersRewrite(
    const PlanNodePtr& node,
    const std::unordered_map<const PlanNode*, size_t>& parents,
    NodeMemo* memo) {
  auto it = memo->find(node.get());
  if (it != memo->end()) return it->second;
  std::vector<PlanNodePtr> inputs;
  inputs.reserve(node->inputs.size());
  bool changed = false;
  for (const auto& in : node->inputs) {
    inputs.push_back(PushScanFiltersRewrite(in, parents, memo));
    changed |= inputs.back() != in;
  }

  PlanNodePtr out = node;
  // Only specialize a scan this Filter exclusively owns — a shared scan
  // (§7.3) also feeds parents without the predicate, and skipping blocks
  // for them would drop their rows.
  bool push = false;
  if (node->op == PlanOp::kFilter && inputs.size() == 1 &&
      inputs[0]->op == PlanOp::kScan) {
    const PlanNode* scan = inputs[0].get();
    auto pit = parents.find(scan);
    push = pit != parents.end() && pit->second == 1 &&
           (scan->scan_filter == nullptr ||
            scan->scan_filter->ToString() != node->predicate->ToString());
  }
  if (push) {
    auto new_scan = CloneNode(*inputs[0]);
    new_scan->scan_filter = node->predicate;
    auto n = CloneNode(*node);
    n->inputs = {std::move(new_scan)};
    out = n;
  } else if (changed) {
    auto n = CloneNode(*node);
    n->inputs = std::move(inputs);
    out = n;
  }
  memo->emplace(node.get(), out);
  return out;
}

}  // namespace

PlanNodePtr PushScanFiltersPass(const PlanNodePtr& plan,
                                const Catalog& catalog) {
  (void)catalog;
  auto parents = CountParentEdges(plan);
  NodeMemo memo;
  return PushScanFiltersRewrite(plan, parents, &memo);
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

const std::vector<OptimizerPass>& DefaultPasses() {
  static const std::vector<OptimizerPass> kPasses = {
      {"fold-constants", FoldConstantsPass},
      {"push-filters", PushDownFiltersPass},
      {"prune-projections", PruneProjectionsPass},
      {"prune-aggregates", PruneAggregatesPass},
      {"project-scans", ProjectScansPass},
      {"push-scan-filters", PushScanFiltersPass},
  };
  return kPasses;
}

PlanNodePtr Optimize(const PlanNodePtr& plan, const Catalog& catalog) {
  CheckPlan(plan != nullptr, "Optimize on empty plan");
  constexpr int kMaxRounds = 8;
  PlanNodePtr current = plan;
  std::string before = PlanToString(current);
  for (int round = 0; round < kMaxRounds; ++round) {
    for (const auto& pass : DefaultPasses()) {
      current = pass.run(current, catalog);
    }
    std::string after = PlanToString(current);
    if (after == before) break;
    before = std::move(after);
  }
  // The rewritten plan must still validate (and this surfaces optimizer
  // bugs as loud errors rather than wrong results downstream).
  InferProps(current, catalog);
  return current;
}

Plan Optimize(const Plan& plan, const Catalog& catalog) {
  return Plan(Optimize(plan.node(), catalog));
}

}  // namespace wake
