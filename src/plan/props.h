// Plan property inference: output schema, key metadata, attribute
// mutability, and the OLA evolution mode of every operator's output.
//
// These properties drive the Case 1/2/3 classification from §2.2 of the
// paper:
//  - kAppend  (Case 1): new partials only add rows; existing rows final.
//  - kRefresh (Case 2/3): each new state replaces the previous content.
// An aggregation whose group keys cover the input's clustering key is a
// *local* aggregation (Case 1); otherwise it is a shuffle aggregation
// (Case 2) whose outputs are mutable attributes requiring growth-based
// inference.
#ifndef WAKE_PLAN_PROPS_H_
#define WAKE_PLAN_PROPS_H_

#include "plan/plan.h"
#include "storage/partitioned_table.h"

namespace wake {

/// How an operator's output evolves during OLA.
enum class EvolveMode : uint8_t {
  kAppend,   // partials accumulate (Case 1)
  kRefresh,  // each state is a full snapshot (Case 2/3)
};

/// Inferred static properties of a plan node's output edf.
struct PlanProps {
  Schema schema;  // includes primary/clustering keys and mutability flags
  EvolveMode mode = EvolveMode::kAppend;
  /// True for aggregations requiring growth-based inference (shuffle aggs
  /// over still-growing inputs).
  bool needs_inference = false;
};

/// Computes properties for `node` (recursively over its inputs) against
/// `catalog`. Throws wake::Error for malformed plans (unknown columns,
/// key arity mismatches, aggregates over strings, ...). Used both by the
/// Wake compiler and by plan validation in tests.
PlanProps InferProps(const PlanNodePtr& node, const Catalog& catalog);

/// Output schema of a join given resolved input schemas (shared by the
/// exact engine's kernel and InferProps). For inner/left/cross joins the
/// result is left fields + right fields minus the right join keys; for
/// semi/anti joins it is the left fields only. Left-join right columns are
/// marked nullable implicitly (nulls appear in the data, not the schema).
Schema JoinOutputSchema(const Schema& left, const Schema& right,
                        const std::vector<std::string>& right_keys,
                        JoinType type);

/// Output schema of an aggregation: group-by fields followed by one field
/// per AggSpec (sum/avg/var/stddev are float64; counts are int64; min/max
/// keep the input type).
Schema AggOutputSchema(const Schema& input,
                       const std::vector<std::string>& group_by,
                       const std::vector<AggSpec>& aggs);

}  // namespace wake

#endif  // WAKE_PLAN_PROPS_H_
