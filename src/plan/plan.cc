#include "plan/plan.h"

#include "common/error.h"
#include "common/strings.h"

namespace wake {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum: return "sum";
    case AggFunc::kCount: return "count";
    case AggFunc::kAvg: return "avg";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
    case AggFunc::kCountDistinct: return "count_distinct";
    case AggFunc::kVar: return "var";
    case AggFunc::kStddev: return "stddev";
    case AggFunc::kMedian: return "median";
  }
  return "?";
}

namespace {
std::shared_ptr<PlanNode> NewNode(PlanOp op) {
  auto node = std::make_shared<PlanNode>();
  node->op = op;
  return node;
}
}  // namespace

Plan Plan::Scan(std::string table, std::vector<std::string> columns) {
  auto node = NewNode(PlanOp::kScan);
  node->table = std::move(table);
  node->columns = std::move(columns);
  node->label = "scan(" + node->table + ")";
  return Plan(node);
}

Plan Plan::Map(std::vector<NamedExpr> projections) const {
  CheckPlan(node_ != nullptr, "Map on empty plan");
  auto node = NewNode(PlanOp::kMap);
  node->inputs = {node_};
  node->projections = std::move(projections);
  node->label = "map";
  return Plan(node);
}

Plan Plan::Derive(std::vector<NamedExpr> projections) const {
  CheckPlan(node_ != nullptr, "Derive on empty plan");
  auto node = NewNode(PlanOp::kMap);
  node->inputs = {node_};
  node->projections = std::move(projections);
  node->append_input = true;
  node->label = "derive";
  return Plan(node);
}

Plan Plan::Project(const std::vector<std::string>& columns) const {
  std::vector<NamedExpr> projections;
  projections.reserve(columns.size());
  for (const auto& c : columns) projections.push_back({c, Expr::Col(c)});
  return Map(std::move(projections));
}

Plan Plan::Filter(ExprPtr predicate) const {
  CheckPlan(node_ != nullptr, "Filter on empty plan");
  auto node = NewNode(PlanOp::kFilter);
  node->inputs = {node_};
  node->predicate = std::move(predicate);
  node->label = "filter";
  return Plan(node);
}

Plan Plan::Join(const Plan& right, JoinType type,
                std::vector<std::string> left_keys,
                std::vector<std::string> right_keys) const {
  CheckPlan(node_ != nullptr && right.node_ != nullptr, "Join on empty plan");
  CheckPlan(left_keys.size() == right_keys.size(),
           "join key arity mismatch");
  CheckPlan(type == JoinType::kCross || !left_keys.empty(),
           "equi-join requires keys");
  auto node = NewNode(PlanOp::kJoin);
  node->inputs = {node_, right.node_};
  node->join_type = type;
  node->left_keys = std::move(left_keys);
  node->right_keys = std::move(right_keys);
  node->label = "join";
  return Plan(node);
}

Plan Plan::CrossJoin(const Plan& right) const {
  return Join(right, JoinType::kCross, {}, {});
}

Plan Plan::Aggregate(std::vector<std::string> group_by,
                     std::vector<AggSpec> aggs) const {
  CheckPlan(node_ != nullptr, "Aggregate on empty plan");
  CheckPlan(!aggs.empty(), "Aggregate needs at least one aggregate");
  auto node = NewNode(PlanOp::kAggregate);
  node->inputs = {node_};
  node->group_by = std::move(group_by);
  node->aggs = std::move(aggs);
  node->label = "agg";
  return Plan(node);
}

Plan Plan::Sort(std::vector<SortKey> keys, size_t limit) const {
  CheckPlan(node_ != nullptr, "Sort on empty plan");
  auto node = NewNode(PlanOp::kSortLimit);
  node->inputs = {node_};
  node->sort_keys = std::move(keys);
  node->limit = limit;
  node->label = "sort";
  return Plan(node);
}

Plan Plan::WithLabel(std::string label) const {
  CheckPlan(node_ != nullptr, "WithLabel on empty plan");
  auto node = std::make_shared<PlanNode>(*node_);
  node->label = std::move(label);
  return Plan(node);
}

std::string PlanToString(const PlanNodePtr& node, int indent) {
  if (!node) return "";
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad;
  switch (node->op) {
    case PlanOp::kScan:
      out += "Scan " + node->table;
      if (!node->columns.empty()) {
        out += " [" + Join(node->columns, ",") + "]";
      }
      if (node->scan_filter != nullptr) {
        out += " prune " + node->scan_filter->ToString();
      }
      break;
    case PlanOp::kMap:
      out += node->append_input ? "Derive [" : "Map [";
      for (size_t i = 0; i < node->projections.size(); ++i) {
        if (i > 0) out += ", ";
        out += node->projections[i].name;
      }
      out += "]";
      break;
    case PlanOp::kFilter:
      out += "Filter " + node->predicate->ToString();
      break;
    case PlanOp::kJoin: {
      const char* names[] = {"Inner", "Left", "Semi", "Anti", "Cross"};
      out += std::string(names[static_cast<int>(node->join_type)]) +
             "Join on [" + Join(node->left_keys, ",") + "]=[" +
             Join(node->right_keys, ",") + "]";
      break;
    }
    case PlanOp::kAggregate:
      out += "Aggregate by [" + Join(node->group_by, ",") + "] {";
      for (size_t i = 0; i < node->aggs.size(); ++i) {
        if (i > 0) out += ", ";
        out += std::string(AggFuncName(node->aggs[i].func)) + "(" +
               node->aggs[i].input + ")->" + node->aggs[i].output;
      }
      out += "}";
      break;
    case PlanOp::kSortLimit:
      out += "Sort";
      if (node->limit > 0) out += " limit " + std::to_string(node->limit);
      break;
  }
  out += "\n";
  for (const auto& in : node->inputs) out += PlanToString(in, indent + 1);
  return out;
}

}  // namespace wake
