// Live tables: the streaming-ingestion side of Wake.
//
// A LiveTable is a mutable, append-only table built from two stores:
//
//  - the *hot tablet*: an in-memory list of immutable row chunks, one per
//    Append() call. Cheap to write (no encoding), scanned row-by-row.
//  - *cold tablets*: immutable sealed tablets. When the hot tablet
//    crosses a row/byte threshold it is frozen and — when a spill
//    directory is configured — flushed through the wakeblock writer, so
//    cold tablets get block synopses and block-skipping scans for free.
//
// Rows have a stable *global order*: the order they were appended. A
// sealed tablet covers a contiguous row range, and tablets never reorder,
// so `[start_row, end_row)` of a snapshot names an exact row set. That is
// the foundation of the epoch/consistency contract:
//
//   Snapshot() returns one immutable composite PartitionedTable over the
//   cold tablets plus a frozen copy of the hot chunk list, all taken
//   under one lock. A query planned against that snapshot sees exactly
//   the rows of one epoch — appends racing the query land in later
//   epochs and are invisible to it. Two queries over the same epoch see
//   byte-identical data.
//
// Durability of a flush is crash-safe by construction: the tablet is
// written into a hidden staging directory and published with one
// std::filesystem::rename — a crash mid-write leaves only staging
// debris, never a half-visible tablet. Recovery (construction with a
// spill_dir that already has tablets) re-opens every published tablet
// through the fully-validating wakeblock reader; a tablet that fails
// validation (torn write, bit rot — every byte is CRC-guarded) is moved
// to `<spill_dir>/quarantine/` and never served.
//
// Retention: `retain_tablets` bounds the cold tablet list. Evicting a
// tablet removes it from *future* snapshots; existing snapshots keep it
// alive (shared ownership), and its on-disk directory is deleted only
// when the last snapshot referencing it is destroyed.
//
// Thread safety: every public method is safe to call concurrently.
#ifndef WAKE_INGEST_LIVE_TABLE_H_
#define WAKE_INGEST_LIVE_TABLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/partitioned_table.h"

namespace wake {

struct LiveTableOptions {
  /// Seal the hot tablet once it holds this many rows...
  size_t seal_rows = 64 * 1024;
  /// ...or this many bytes (either threshold seals; 0 disables one).
  size_t seal_bytes = 16u << 20;
  /// Directory sealed tablets are flushed to in wakeblock format. Empty =
  /// cold tablets stay in memory (still immutable, no block skipping).
  std::string spill_dir;
  /// Keep at most this many cold tablets; older ones are evicted oldest-
  /// first at seal time. 0 = keep everything. Snapshots taken before an
  /// eviction keep the evicted tablet readable until they are released.
  size_t retain_tablets = 0;
};

/// One segment of a live-table snapshot, with its global row range.
struct LiveTabletRef {
  TablePtr table;
  uint64_t start_row = 0;  // global index of the tablet's first row
  uint64_t rows = 0;
  bool hot = false;  // true for the (at most one, last) hot segment
};

/// A consistent view of a LiveTable at one epoch.
struct LiveSnapshot {
  /// Epoch counter: bumped by every mutation (append, seal, evict). Two
  /// snapshots with the same epoch are views of identical data.
  uint64_t epoch = 0;
  /// Global row range covered: [start_row, end_row). start_row > 0 after
  /// evictions (the evicted prefix is gone from this view).
  uint64_t start_row = 0;
  uint64_t end_row = 0;
  /// Composite table over `tablets` — what queries scan.
  TablePtr table;
  /// The same segments individually, in global row order (cold tablets
  /// oldest-first, then the hot segment if non-empty). Standing queries
  /// use these to assemble the delta since their last refresh.
  std::vector<LiveTabletRef> tablets;
};

/// Counters for observability and tests.
struct LiveTableStats {
  uint64_t epoch = 0;
  uint64_t rows_appended = 0;   // lifetime, including evicted rows
  uint64_t rows_evicted = 0;
  size_t hot_rows = 0;
  size_t hot_chunks = 0;
  size_t cold_tablets = 0;
  size_t tablets_flushed = 0;    // sealed tablets successfully spilled
  size_t flush_failures = 0;     // seals that fell back to in-memory cold
  size_t tablets_recovered = 0;  // valid tablets re-opened at startup
  size_t tablets_quarantined = 0;
};

class LiveTable : public DynamicTable {
 public:
  /// Creates the live table, recovering any tablets already published
  /// under `options.spill_dir` (invalid ones are quarantined, see file
  /// comment). Throws kInvalidArgument for an unsafe name or a recovered
  /// tablet whose schema does not match `schema`.
  LiveTable(std::string name, Schema schema, LiveTableOptions options = {});

  // DynamicTable:
  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }
  TablePtr Snapshot() const override;

  /// Appends `rows` (schema must match) as one immutable hot chunk.
  /// Seals the hot tablet if it crosses a threshold. Returns the epoch
  /// that first contains the rows.
  uint64_t Append(const DataFrame& rows);

  /// Forces a seal of the current hot tablet (no-op when empty).
  /// Returns the current epoch.
  uint64_t SealHot();

  /// Like Snapshot(), with the epoch and per-tablet row ranges.
  LiveSnapshot SnapshotInfo() const;

  LiveTableStats stats() const;

 private:
  /// A cold tablet plus the bookkeeping to delete its directory when the
  /// last snapshot lease drops after eviction.
  struct TabletHolder {
    PartitionedTable table;
    std::string dir;  // published tablet directory ("" = in-memory)
    bool evicted = false;
    ~TabletHolder();
  };
  struct ColdTablet {
    std::shared_ptr<TabletHolder> holder;
    uint64_t start_row = 0;
    uint64_t rows = 0;
    uint64_t seq = 0;
  };

  void SealHotLocked();
  void ApplyRetentionLocked();
  void RecoverSpillDir();
  /// Builds the snapshot segment list; requires mu_ held.
  std::vector<LiveTabletRef> SegmentsLocked() const;

  const std::string name_;
  const Schema schema_;
  const LiveTableOptions options_;

  mutable std::mutex mu_;
  std::vector<ColdTablet> cold_;
  std::vector<DataFramePtr> hot_chunks_;
  size_t hot_rows_ = 0;
  size_t hot_bytes_ = 0;
  uint64_t epoch_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t rows_appended_ = 0;
  uint64_t rows_evicted_ = 0;
  size_t tablets_flushed_ = 0;
  size_t flush_failures_ = 0;
  size_t tablets_recovered_ = 0;
  size_t tablets_quarantined_ = 0;
};

}  // namespace wake

#endif  // WAKE_INGEST_LIVE_TABLE_H_
