#include "ingest/live_table.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/error.h"
#include "common/failpoint.h"
#include "storage/wakeblock.h"

namespace wake {

namespace fs = std::filesystem;

namespace {

// Published tablet directories are "t<8-digit seq>"; the staging name
// hides the tablet until the publishing rename.
std::string TabletDirName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t%08llu",
                static_cast<unsigned long long>(seq));
  return buf;
}

bool ParseTabletDirName(const std::string& base, uint64_t* seq) {
  if (base.size() < 2 || base[0] != 't') return false;
  uint64_t v = 0;
  for (size_t i = 1; i < base.size(); ++i) {
    if (base[i] < '0' || base[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(base[i] - '0');
  }
  *seq = v;
  return true;
}

bool SchemaMatches(const Schema& a, const Schema& b) {
  if (a.num_fields() != b.num_fields()) return false;
  for (size_t i = 0; i < a.num_fields(); ++i) {
    if (a.field(i).name != b.field(i).name) return false;
    if (a.field(i).type != b.field(i).type) return false;
  }
  return true;
}

}  // namespace

LiveTable::TabletHolder::~TabletHolder() {
  if (!evicted || dir.empty()) return;
  std::error_code ec;
  fs::remove_all(dir, ec);  // best effort; leftovers re-validate on recovery
}

LiveTable::LiveTable(std::string name, Schema schema, LiveTableOptions options)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      options_(std::move(options)) {
  CheckArg(!name_.empty(), "live table name must be non-empty");
  for (char c : name_) {
    CheckArg(std::isalnum(static_cast<unsigned char>(c)) || c == '_',
             "live table name must be [A-Za-z0-9_]: '" + name_ + "'");
  }
  CheckArg(schema_.num_fields() > 0, "live table schema must be non-empty");
  CheckArg(options_.seal_rows > 0 || options_.seal_bytes > 0,
           "at least one seal threshold must be set");
  if (!options_.spill_dir.empty()) RecoverSpillDir();
}

void LiveTable::RecoverSpillDir() {
  const fs::path root(options_.spill_dir);
  fs::create_directories(root);
  std::vector<std::pair<uint64_t, fs::path>> published;
  for (const auto& entry : fs::directory_iterator(root)) {
    const std::string base = entry.path().filename().string();
    if (base.rfind(".staging", 0) == 0) {
      // A crash mid-flush leaves staging debris; it was never published,
      // so it holds no acknowledged rows — discard it.
      std::error_code ec;
      fs::remove_all(entry.path(), ec);
      continue;
    }
    uint64_t seq = 0;
    if (ParseTabletDirName(base, &seq)) published.emplace_back(seq, entry.path());
  }
  std::sort(published.begin(), published.end());

  for (const auto& [seq, dir] : published) {
    bool opened = false;
    PartitionedTable table;
    try {
      // Open fully validates: meta CRC, file extents, every block header
      // and dictionary page. Torn or corrupt tablets throw kProtocol.
      table = PartitionedTable::OpenWakeblock(dir.string(), name_);
      opened = true;
    } catch (const Error&) {
      const fs::path qdir = root / "quarantine";
      fs::create_directories(qdir);
      std::error_code ec;
      fs::remove_all(qdir / dir.filename(), ec);
      fs::rename(dir, qdir / dir.filename(), ec);
      if (ec) fs::remove_all(dir, ec);  // quarantine failed: drop it
      ++tablets_quarantined_;
    }
    if (!opened) continue;
    // A valid tablet with the wrong shape is a configuration error, not
    // corruption — refuse to start rather than silently quarantine data.
    CheckArg(SchemaMatches(table.schema(), schema_),
             "recovered tablet schema mismatch for live table '" + name_ +
                 "' at " + dir.string());
    auto holder = std::make_shared<TabletHolder>();
    holder->table = std::move(table);
    holder->dir = dir.string();
    ColdTablet cold;
    cold.start_row = rows_appended_;
    cold.rows = holder->table.total_rows();
    cold.seq = seq;
    cold.holder = std::move(holder);
    rows_appended_ += cold.rows;
    next_seq_ = std::max(next_seq_, seq + 1);
    cold_.push_back(std::move(cold));
    ++tablets_recovered_;
  }
  ApplyRetentionLocked();  // recovered set must respect retention too
}

uint64_t LiveTable::Append(const DataFrame& rows) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rows.num_rows() == 0) return epoch_;
  CheckArg(SchemaMatches(rows.schema(), schema_),
           "append schema mismatch for live table '" + name_ + "'");
  auto chunk = std::make_shared<DataFrame>(rows);  // immutable copy
  hot_rows_ += chunk->num_rows();
  hot_bytes_ += chunk->ByteSize();
  rows_appended_ += chunk->num_rows();
  hot_chunks_.push_back(std::move(chunk));
  const bool seal =
      (options_.seal_rows > 0 && hot_rows_ >= options_.seal_rows) ||
      (options_.seal_bytes > 0 && hot_bytes_ >= options_.seal_bytes);
  if (seal) SealHotLocked();
  return ++epoch_;
}

uint64_t LiveTable::SealHot() {
  std::lock_guard<std::mutex> lock(mu_);
  if (hot_chunks_.empty()) return epoch_;
  SealHotLocked();
  return ++epoch_;
}

void LiveTable::SealHotLocked() {
  // Freeze the hot chunks into one contiguous partition: the sealed
  // tablet covers global rows [start, start + hot_rows_).
  DataFrame frozen(schema_);
  for (const auto& chunk : hot_chunks_) frozen.Append(*chunk);
  const uint64_t start = rows_appended_ - hot_rows_;
  const uint64_t seq = next_seq_++;

  PartitionedTable tablet(name_, schema_);
  tablet.AddPartition(std::make_shared<DataFrame>(std::move(frozen)));

  auto holder = std::make_shared<TabletHolder>();
  bool flushed = false;
  if (!options_.spill_dir.empty()) {
    const fs::path root(options_.spill_dir);
    const fs::path staging = root / (".staging_" + TabletDirName(seq));
    const fs::path final_dir = root / TabletDirName(seq);
    try {
      WAKE_FAILPOINT("ingest.flush");
      std::error_code ec;
      fs::remove_all(staging, ec);
      fs::create_directories(staging);
      // Write into staging, publish with one atomic rename: a crash at
      // any byte of the write leaves no visible tablet.
      wakeblock::Write(tablet, staging.string());
      fs::rename(staging, final_dir);
      // Reopen lazily so cold scans get synopses and block skipping.
      holder->table = PartitionedTable::OpenWakeblock(final_dir.string(), name_);
      holder->dir = final_dir.string();
      flushed = true;
      ++tablets_flushed_;
    } catch (const Error&) {
      // Flush failed: keep the sealed tablet in memory — the rows stay
      // queryable, nothing is lost, only block skipping is forgone.
      std::error_code ec;
      fs::remove_all(staging, ec);
      ++flush_failures_;
    }
  }
  if (!flushed) holder->table = std::move(tablet);

  ColdTablet cold;
  cold.start_row = start;
  cold.rows = hot_rows_;
  cold.seq = seq;
  cold.holder = std::move(holder);
  cold_.push_back(std::move(cold));
  hot_chunks_.clear();
  hot_rows_ = 0;
  hot_bytes_ = 0;
  ApplyRetentionLocked();
}

void LiveTable::ApplyRetentionLocked() {
  if (options_.retain_tablets == 0) return;
  while (cold_.size() > options_.retain_tablets) {
    // Mark evicted; the holder deletes its directory when the last
    // snapshot lease referencing it is released.
    cold_.front().holder->evicted = true;
    rows_evicted_ += cold_.front().rows;
    cold_.erase(cold_.begin());
  }
}

std::vector<LiveTabletRef> LiveTable::SegmentsLocked() const {
  std::vector<LiveTabletRef> out;
  out.reserve(cold_.size() + 1);
  for (const auto& t : cold_) {
    // Aliasing share: the snapshot leases the holder, keeping an evicted
    // tablet's data (and directory) alive until the snapshot dies.
    TablePtr table(t.holder, &t.holder->table);
    out.push_back(LiveTabletRef{std::move(table), t.start_row, t.rows, false});
  }
  if (!hot_chunks_.empty()) {
    auto hot = std::make_shared<PartitionedTable>(name_, schema_);
    for (const auto& chunk : hot_chunks_) hot->AddPartition(chunk);
    out.push_back(LiveTabletRef{std::move(hot), rows_appended_ - hot_rows_,
                                hot_rows_, true});
  }
  return out;
}

TablePtr LiveTable::Snapshot() const { return SnapshotInfo().table; }

LiveSnapshot LiveTable::SnapshotInfo() const {
  std::lock_guard<std::mutex> lock(mu_);
  LiveSnapshot snap;
  snap.epoch = epoch_;
  snap.start_row = rows_evicted_;
  snap.end_row = rows_appended_;
  snap.tablets = SegmentsLocked();
  std::vector<TablePtr> segments;
  segments.reserve(snap.tablets.size());
  for (const auto& t : snap.tablets) segments.push_back(t.table);
  snap.table = std::make_shared<PartitionedTable>(
      PartitionedTable::FromSegments(name_, schema_, std::move(segments)));
  return snap;
}

LiveTableStats LiveTable::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  LiveTableStats s;
  s.epoch = epoch_;
  s.rows_appended = rows_appended_;
  s.rows_evicted = rows_evicted_;
  s.hot_rows = hot_rows_;
  s.hot_chunks = hot_chunks_.size();
  s.cold_tablets = cold_.size();
  s.tablets_flushed = tablets_flushed_;
  s.flush_failures = flush_failures_;
  s.tablets_recovered = tablets_recovered_;
  s.tablets_quarantined = tablets_quarantined_;
  return s;
}

}  // namespace wake
