// Per-query resource governance: budgets, usage tracking, admission.
//
// A long-running OLA query is useful before it finishes — which is
// exactly why it must never take the process down with it. This header
// provides the two pieces the engines share:
//
//  - ResourceTracker: one per running query. Operators charge/credit an
//    atomic byte counter wherever partials materialize (channel queues,
//    join build tables, aggregation accumulators, reader batches), the
//    readers charge a rows-scanned counter, and poll points check a
//    wall-clock deadline. The first limit crossed latches a BreachReason
//    and fires a one-shot callback — the same cooperative-stop edge the
//    cancel path uses, so every engine observes a breach at the poll
//    points that already check for cancellation. A tracker may reserve
//    against a parent (the wake::Db session-wide limit), so one runaway
//    query breaches itself instead of starving its neighbours.
//
//  - AdmissionController: FIFO gate in front of a session's run loop.
//    At most `max_active` queries run at once; excess runs queue (up to
//    `max_queued`, then kQueueFull), wait at most an admission timeout
//    (kAdmissionTimeout), and dequeue immediately when cancelled.
//
// Accounting is deliberately approximate (ByteSize of materialized
// frames plus operator-state estimates, not allocator bookkeeping): the
// goal is bounding runaway queries by orders of magnitude, not byte-exact
// accounting.
#ifndef WAKE_COMMON_RESOURCE_H_
#define WAKE_COMMON_RESOURCE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>

namespace wake {

/// Limits one query may consume. Zero means unlimited.
struct QueryBudget {
  size_t memory_limit_bytes = 0;  // materialized partials + operator state
  int64_t timeout_ms = 0;         // wall clock, measured from Run()
  size_t max_rows_scanned = 0;    // base-table rows read across all scans
};

/// Which limit a query crossed first.
enum class BreachReason : uint8_t {
  kNone,
  kMemory,         // QueryBudget::memory_limit_bytes
  kDeadline,       // QueryBudget::timeout_ms
  kRowsScanned,    // QueryBudget::max_rows_scanned
  kSessionMemory,  // DbOptions::total_memory_limit (shared across queries)
};

const char* BreachReasonName(BreachReason reason);

/// Thread-safe per-query resource meter with latched breach state.
///
/// Charge/Credit/ChargeRows may be called concurrently from any engine
/// thread. CheckBreach() is the poll point (deadline + latched state) and
/// is called wherever the engines already poll their cancel tokens. The
/// breach callback fires exactly once, on whichever thread crossed the
/// limit first; it must be non-blocking (the engines pass their
/// cooperative-stop entry point).
///
/// Release() ends accounting: it credits the parent for everything still
/// outstanding (queued-but-undrained partials discarded by a cancelled
/// channel never see their credit, so the query's terminal path settles
/// the balance) and detaches, after which all mutators are no-ops. Call
/// it once, after every thread of the run has been joined.
class ResourceTracker {
 public:
  ResourceTracker() = default;
  ~ResourceTracker() { Release(); }

  ResourceTracker(const ResourceTracker&) = delete;
  ResourceTracker& operator=(const ResourceTracker&) = delete;

  /// Arms the limits (deadline measured from now) and attaches the
  /// optional session-wide parent. Not thread-safe; call before the run
  /// starts. `parent` must outlive this tracker.
  void Arm(const QueryBudget& budget, ResourceTracker* parent = nullptr);

  /// Session-wide construction: only a memory limit, no deadline. A
  /// session meter never latches a breach of its own — it is a live
  /// gauge, and the query whose charge tips it over is the one that
  /// breaches (kSessionMemory). Once that query releases its balance,
  /// later queries run against the recovered headroom.
  void ArmSessionLimit(size_t total_memory_bytes);

  /// Instantaneous reading: is current usage above the memory limit?
  /// Unlike breached(), this moves back below the line when memory is
  /// credited — it is what charging children consult on a session meter.
  bool over_limit() const {
    return memory_limit_ != 0 &&
           used_.load(std::memory_order_relaxed) >
               static_cast<int64_t>(memory_limit_);
  }

  /// One-shot breach notification; set before the run starts.
  void set_on_breach(std::function<void()> cb) { on_breach_ = std::move(cb); }

  /// Adds `bytes` of materialized state; breaches on the query or session
  /// limit. Safe from any thread.
  void Charge(size_t bytes);

  /// Returns previously charged bytes (clamped at zero, so a credit that
  /// races Release can never underflow the session meter).
  void Credit(size_t bytes);

  /// Adjusts toward `now_bytes` for state whose size is re-measured in
  /// place (operator internal state); `accounted` holds the last measure.
  void Sync(size_t now_bytes, size_t* accounted);

  /// Adds scanned base-table rows; breaches on max_rows_scanned.
  void ChargeRows(size_t rows);

  /// Poll point: checks the deadline, returns the latched breach state.
  bool CheckBreach();

  bool breached() const {
    return reason_.load(std::memory_order_acquire) !=
           static_cast<uint8_t>(BreachReason::kNone);
  }
  BreachReason reason() const {
    return static_cast<BreachReason>(reason_.load(std::memory_order_acquire));
  }

  size_t used_bytes() const {
    int64_t v = used_.load(std::memory_order_relaxed);
    return v > 0 ? static_cast<size_t>(v) : 0;
  }
  size_t rows_scanned() const { return rows_.load(std::memory_order_relaxed); }

  /// Human-readable account of the breach ("memory limit exceeded: ...").
  std::string BreachMessage() const;

  /// Settles the parent balance and detaches; idempotent. After Release
  /// every mutator is a no-op (late credits from a consumer still
  /// draining the state stream are harmless).
  void Release();

 private:
  void Trigger(BreachReason reason);

  std::atomic<int64_t> used_{0};
  std::atomic<size_t> rows_{0};
  std::atomic<bool> released_{false};
  size_t memory_limit_ = 0;
  bool session_meter_ = false;
  size_t max_rows_ = 0;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::atomic<ResourceTracker*> parent_{nullptr};
  std::atomic<uint8_t> reason_{static_cast<uint8_t>(BreachReason::kNone)};
  std::atomic<bool> notified_{false};
  std::function<void()> on_breach_;
};

/// FIFO admission gate for a session's concurrent runs.
///
/// Submit() (caller thread, at Run()) either admits immediately, queues
/// the ticket, or throws wake::Error(kQueueFull). Await() (driver thread)
/// blocks until the ticket is admitted, its admission timeout expires, or
/// Cancel() dequeues it. Release() frees the slot of an admitted ticket
/// and admits the next queued one.
class AdmissionController {
 public:
  /// `max_active` > 0. `max_queued` == 0 means no waiting: excess runs
  /// are rejected immediately with kQueueFull.
  AdmissionController(size_t max_active, size_t max_queued);

  enum class Outcome { kAdmitted, kTimedOut, kCancelled };

  class Ticket {
   public:
    Ticket() = default;

   private:
    friend class AdmissionController;
    enum class State { kQueued, kAdmitted, kCancelled, kTimedOut };
    State state_ = State::kQueued;
    bool released_ = false;
  };
  using TicketPtr = std::shared_ptr<Ticket>;

  /// Throws wake::Error(kQueueFull) when the wait queue is at capacity.
  TicketPtr Submit();

  /// Blocks until admitted / timed out / cancelled. `timeout_ms` == 0
  /// waits indefinitely.
  Outcome Await(const TicketPtr& ticket, int64_t timeout_ms);

  /// Dequeues a still-queued ticket immediately (cancel-while-queued).
  /// A ticket already admitted is unaffected — its run cancels normally
  /// and releases its slot when it finishes.
  void Cancel(const TicketPtr& ticket);

  /// Frees the slot held by an admitted ticket; idempotent.
  void Release(const TicketPtr& ticket);

  size_t active() const;
  size_t queued() const;

 private:
  void AdmitNextLocked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t max_active_;
  size_t max_queued_;
  size_t active_ = 0;
  std::deque<TicketPtr> queue_;
};

}  // namespace wake

#endif  // WAKE_COMMON_RESOURCE_H_
