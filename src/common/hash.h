// Shared scalar hash primitives.
//
// Every row-key hash in the engine is built from these two functions, so
// any two physical encodings of the same logical value (e.g. a plain
// string column and a dictionary-encoded one) produce identical hashes
// and can probe each other's hash indexes.
#ifndef WAKE_COMMON_HASH_H_
#define WAKE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace wake {

/// Mixes `v` into the running hash `h` (derived from splitmix64's
/// finalizer).
inline uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

/// Seed-free FNV-1a over bytes. String columns mix this value with the row
/// seed via MixHash; StringDict pre-computes it once per distinct entry.
inline uint64_t FnvHash64(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// FNV-1a over bytes mixed with `seed` — the canonical string-value row
/// hash (== MixHash(seed, FnvHash64(data, len))).
inline uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  return MixHash(seed, FnvHash64(data, len));
}

}  // namespace wake

#endif  // WAKE_COMMON_HASH_H_
