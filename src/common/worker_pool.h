// WorkerPool: a process-wide pool of worker threads with a work-stealing
// task queue, used to run morsel-parallel loops inside execution nodes.
//
// Wake's pipeline parallelism (one thread per node, §7.2) caps a deep
// plan's throughput at its slowest operator. The pool adds intra-operator
// parallelism: a node splits each incoming partial into row-range morsels
// and runs them here, while the node thread itself participates as one
// worker, so WAKE_WORKERS=1 degenerates to the exact serial execution.
//
// Determinism contract: the pool only schedules work — callers must make
// their task decomposition (morsel boundaries, shard counts) a function of
// the input alone, never of the worker count. Every ParallelFor /
// ParallelShards call runs tasks indexed 0..n-1 exactly once; which thread
// runs which task is unspecified, so per-task outputs must be stitched by
// task index, not completion order.
//
// Scheduling: each worker owns a deque; Submit() pushes to the deques
// round-robin, idle workers pop their own deque LIFO and steal from
// siblings FIFO. Parallel loops submit one runner task per worker; runners
// claim loop indices from a shared atomic cursor (cheaper than one queue
// entry per morsel) while the stealing layer balances runners across
// concurrently executing nodes.
#ifndef WAKE_COMMON_WORKER_POOL_H_
#define WAKE_COMMON_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace wake {

class WorkerPool {
 public:
  /// A pool with `workers` total executors: the caller of a parallel loop
  /// counts as one, so `workers - 1` threads are spawned. `workers == 1`
  /// spawns nothing and runs every loop inline (exact serial execution).
  explicit WorkerPool(size_t workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Process-wide pool, sized once from WAKE_WORKERS (falling back to
  /// std::thread::hardware_concurrency).
  static WorkerPool& Global();

  /// WAKE_WORKERS env value, or hardware_concurrency when unset/invalid.
  static size_t DefaultWorkers();

  /// Total executors (spawned threads + the participating caller).
  size_t workers() const { return threads_.size() + 1; }

  /// Enqueues one task on the work-stealing queue.
  void Submit(std::function<void()> task);

  /// Runs body(begin, end) for consecutive row ranges of size `grain`
  /// covering [0, n). Blocks until every range completed. The range
  /// decomposition depends only on (n, grain) — never on the worker count
  /// — so per-range results stitched by range index are deterministic.
  /// The caller participates; with one worker the loop runs inline, in
  /// range order. Bodies must not throw (the first exception is rethrown
  /// on the caller after the loop drains) and must not call back into a
  /// blocking pool loop for unbounded nesting — one nested level is safe
  /// because callers always participate.
  void ParallelFor(size_t n, size_t grain,
                   const std::function<void(size_t, size_t)>& body);

  /// Runs body(shard) for shard in [0, shards), blocking until all
  /// complete. Same determinism and exception rules as ParallelFor.
  void ParallelShards(size_t shards,
                      const std::function<void(size_t)>& body);

 private:
  struct LoopState;

  void WorkerMain(size_t slot);
  /// Runs queued tasks until `until` returns true (worker main loop uses
  /// `until` = pool shutdown).
  bool PopOrSteal(size_t slot, std::function<void()>* task);
  static void RunLoop(LoopState* state);

  std::vector<std::thread> threads_;
  // One deque per spawned thread; guarded by mu_ (tasks are coarse —
  // runner tasks for whole loops — so one lock is not contended).
  std::vector<std::deque<std::function<void()>>> queues_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  size_t next_queue_ = 0;
  bool shutdown_ = false;
};

/// Resolves the shared 0/1/N worker-count policy (WakeOptions::workers,
/// DbOptions::workers): 0 = the process-wide pool when it would actually
/// be parallel (else null = serial), 1 = null (serial operator bodies),
/// N > 1 = a new owned pool of N workers stored in *owned.
WorkerPool* ResolveWorkerPool(size_t workers,
                              std::unique_ptr<WorkerPool>* owned);

}  // namespace wake

#endif  // WAKE_COMMON_WORKER_POOL_H_
