// A multi-producer / multi-consumer blocking channel.
//
// Channels connect execution nodes (one thread per node, §7.2 of the
// paper). A channel is closed by the producer after sending its last
// message; consumers observe closure through Receive() returning
// std::nullopt once the queue drains. An optional capacity bound provides
// backpressure so fast upstream nodes cannot flood slow downstream ones.
#ifndef WAKE_COMMON_CHANNEL_H_
#define WAKE_COMMON_CHANNEL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/failpoint.h"

namespace wake {

/// Approximate payload size of one queued item, used for the channel's
/// byte accounting (`byte_size()`). The default — any T — is zero;
/// payload types whose queued memory matters (Message, OlaState)
/// overload this next to their definition and are picked up by
/// argument-dependent lookup.
template <typename T>
inline size_t ChannelItemBytes(const T&) {
  return 0;
}

/// Blocking MPMC queue with close semantics.
template <typename T>
class Channel {
 public:
  /// `capacity` == 0 means unbounded.
  explicit Channel(size_t capacity = 0) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Sends one item. Blocks while the channel is at capacity.
  /// Returns false (and drops the item) if the channel is already closed.
  bool Send(T item) {
    WAKE_FAILPOINT("channel.send");
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || queue_.size() < capacity_;
    });
    if (closed_) return false;
    bytes_ += ChannelItemBytes(item);
    queue_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Moves every item of `items` into the queue, acquiring the lock once
  /// and notifying consumers once — the sending half of the batched
  /// discipline (ReceiveAll is the receiving half). Blocks while a bounded
  /// channel is at capacity between pushes. Returns the number of items
  /// accepted (fewer than items.size() only if the channel closes
  /// mid-send); `items` is left empty.
  size_t SendAll(std::vector<T>&& items) {
    if (items.empty()) return 0;
    WAKE_FAILPOINT("channel.send");
    size_t accepted = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (T& item : items) {
        if (capacity_ != 0 && !closed_ && queue_.size() >= capacity_) {
          // About to sleep on a full bounded channel: wake consumers
          // first — the items already pushed must be receivable, or a
          // consumer that blocked before this call would sleep forever
          // while we wait for it to free a slot.
          if (accepted > 0) not_empty_.notify_all();
          not_full_.wait(lock, [&] {
            return closed_ || queue_.size() < capacity_;
          });
        }
        if (closed_) break;
        bytes_ += ChannelItemBytes(item);
        queue_.push_back(std::move(item));
        ++accepted;
      }
      // One wakeup for the whole batch; notify_all because a batch can
      // satisfy several blocked consumers.
      if (accepted > 0) not_empty_.notify_all();
    }
    items.clear();
    return accepted;
  }

  /// Receives one item; blocks until an item is available or the channel
  /// is closed and drained (returns std::nullopt in that case).
  std::optional<T> Receive() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    DebitBytes(ChannelItemBytes(item));
    not_full_.notify_one();
    return item;
  }

  /// Drains the entire queue in one lock acquisition. Blocks until at
  /// least one item is available or the channel is closed; an empty result
  /// therefore means closed-and-drained. Consumer loops use this instead
  /// of per-item Receive() so deep pipelines pay one synchronization per
  /// batch of partials rather than one per partial.
  std::deque<T> ReceiveAll() {
    std::deque<T> out;
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    out.swap(queue_);
    bytes_ = 0;
    // A whole batch of slots freed at once: wake every blocked sender.
    if (!out.empty()) not_full_.notify_all();
    return out;
  }

  /// Receives one item, waiting at most `timeout`. Returns std::nullopt on
  /// timeout as well as on closed-and-drained; callers that need to tell
  /// the two apart check closed() (or their own completion flag) after.
  std::optional<T> ReceiveFor(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return closed_ || !queue_.empty(); })) {
      return std::nullopt;
    }
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    DebitBytes(ChannelItemBytes(item));
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking receive.
  std::optional<T> TryReceive() {
    std::unique_lock<std::mutex> lock(mu_);
    if (queue_.empty()) return std::nullopt;
    T item = std::move(queue_.front());
    queue_.pop_front();
    DebitBytes(ChannelItemBytes(item));
    not_full_.notify_one();
    return item;
  }

  /// Marks the channel closed. Pending items remain receivable.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Cancels the channel: closes it AND discards everything queued, so
  /// blocked receivers return empty immediately instead of draining
  /// pending work first. This is the stop-token edge of cooperative query
  /// cancellation — after Cancel(), Receive/ReceiveAll observe
  /// closed-and-drained and node threads unwind promptly. Idempotent;
  /// safe to race with Send/Close from other threads.
  void Cancel() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    queue_.clear();
    bytes_ = 0;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  /// Approximate bytes queued but not yet received (per ChannelItemBytes;
  /// zero for payload types without an overload). This is what lets a
  /// resource tracker account queued-but-undrained partials.
  size_t byte_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
  }

 private:
  void DebitBytes(size_t n) { bytes_ -= n < bytes_ ? n : bytes_; }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  size_t capacity_;
  size_t bytes_ = 0;
  bool closed_ = false;
};

}  // namespace wake

#endif  // WAKE_COMMON_CHANNEL_H_
