// Wire codec: the byte-level half of wake's query-serving protocol.
//
// Everything a frame carries is encoded little-endian through WireWriter
// and decoded through the bounds-checked WireReader; a reader that runs
// off the end of its buffer throws wake::Error(kProtocol) instead of
// reading garbage, which is what lets the server treat arbitrary
// malformed input as a categorized error rather than undefined behavior.
//
// Frame layout (header is kFrameHeaderBytes = 16 bytes, then payload):
//
//   offset  size  field
//        0     4  magic 0x57414B45 ("WAKE")
//        4     1  protocol version (kProtocolVersion)
//        5     1  frame type (server/protocol.h's FrameType)
//        6     2  reserved, must be zero
//        8     4  payload length in bytes
//       12     4  CRC32 (IEEE) of the payload bytes
//
// The CRC turns torn or corrupted TCP streams into kProtocol errors at
// the frame boundary; the length field is validated against a
// per-endpoint max_frame_bytes before any allocation, so an adversarial
// length cannot balloon memory. Message-level encode/decode lives in
// src/server/protocol.h; this header knows nothing about queries.
#ifndef WAKE_COMMON_WIRE_H_
#define WAKE_COMMON_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/error.h"

namespace wake {
namespace wire {

constexpr uint32_t kMagic = 0x57414B45;  // "WAKE"
constexpr uint8_t kProtocolVersion = 1;
constexpr size_t kFrameHeaderBytes = 16;

/// CRC32 (IEEE 802.3 polynomial, reflected) of `n` bytes.
uint32_t Crc32(const void* data, size_t n);

/// Parsed frame header.
struct FrameHeader {
  uint8_t version = kProtocolVersion;
  uint8_t type = 0;
  uint32_t payload_len = 0;
  uint32_t crc = 0;
};

/// Renders a header into `out` (must hold kFrameHeaderBytes).
void EncodeFrameHeader(const FrameHeader& header, uint8_t* out);

/// Parses and validates a header: magic, version, reserved bytes, and
/// payload_len <= max_payload. Throws wake::Error(kProtocol) on any
/// violation. Does NOT check the CRC (the payload has not been read yet);
/// callers verify it against the payload with Crc32.
FrameHeader DecodeFrameHeader(const uint8_t* data, size_t max_payload);

/// Append-only little-endian encoder.
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { AppendLe(v); }
  void U32(uint32_t v) { AppendLe(v); }
  void U64(uint64_t v) { AppendLe(v); }
  void I64(int64_t v) { AppendLe(static_cast<uint64_t>(v)); }
  /// Raw IEEE-754 bit pattern: decode returns the identical double, so
  /// results survive the wire bit-for-bit.
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    AppendLe(bits);
  }
  /// Length-prefixed (u32) byte string.
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }
  void Bytes(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  template <typename T>
  void AppendLe(T v) {
    char bytes[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    buf_.append(bytes, sizeof(T));
  }

  std::string buf_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer. Every
/// read validates the remaining length first and throws
/// wake::Error(kProtocol, "truncated ...") on underrun — malformed frames
/// become categorized errors, never out-of-bounds reads.
class WireReader {
 public:
  WireReader(const void* data, size_t n)
      : data_(static_cast<const uint8_t*>(data)), size_(n) {}
  explicit WireReader(const std::string& s) : WireReader(s.data(), s.size()) {}

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  /// Throws kProtocol unless at least `n` bytes remain. Decoders call
  /// this before bulk reserve/resize so a forged length field cannot
  /// trigger a huge allocation.
  void Require(size_t n, const char* what) const {
    if (remaining() < n) {
      throw Error(std::string("truncated frame: need ") + what,
                  ErrorCategory::kProtocol);
    }
  }

  uint8_t U8() {
    Require(1, "u8");
    return data_[pos_++];
  }
  uint16_t U16() { return ReadLe<uint16_t>("u16"); }
  uint32_t U32() { return ReadLe<uint32_t>("u32"); }
  uint64_t U64() { return ReadLe<uint64_t>("u64"); }
  int64_t I64() { return static_cast<int64_t>(ReadLe<uint64_t>("i64")); }
  double F64() {
    uint64_t bits = ReadLe<uint64_t>("f64");
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    uint32_t n = U32();
    Require(n, "string body");
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  void Bytes(void* out, size_t n) {
    Require(n, "bytes");
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

 private:
  template <typename T>
  T ReadLe(const char* what) {
    Require(sizeof(T), what);
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace wire
}  // namespace wake

#endif  // WAKE_COMMON_WIRE_H_
