// Minimal POSIX TCP layer for the query server and client.
//
// Everything here is deadline-driven: reads and writes go through
// poll(2) with a millisecond budget so a dead or stalled peer surfaces
// as wake::Error(kNetwork) in bounded time instead of wedging a thread
// forever. Sockets are non-blocking; SIGPIPE is suppressed per-send
// (MSG_NOSIGNAL) so a peer that vanished mid-write is an error return,
// never a process signal.
//
// Failure injection for the chaos suite:
//  - WAKE_FAILPOINT sites "net.read" / "net.write" fire once per
//    Recv/Send call (see common/failpoint.h; "net.accept" and
//    "net.serialize" live in the server).
//  - TestSetIoChunk(n) caps every send/recv syscall at n bytes,
//    deterministically exercising partial reads/writes and frame
//    reassembly across syscall boundaries. 0 (default) disables.
#ifndef WAKE_COMMON_SOCKET_H_
#define WAKE_COMMON_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace wake {
namespace net {

/// RAII file-descriptor wrapper; move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Closes the descriptor (idempotent).
  void Close();

  /// shutdown(SHUT_RDWR): unblocks any thread sleeping in poll on this
  /// socket (reads see EOF, writes fail) without racing the fd's reuse
  /// the way Close() would. Safe to call from another thread.
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (port 0 = ephemeral). Throws
/// wake::Error(kNetwork) on failure.
Socket Listen(const std::string& host, uint16_t port, int backlog = 64);

/// Port the listening socket is bound to (resolves ephemeral binds).
uint16_t LocalPort(const Socket& listener);

/// Accepts one connection, waiting at most `timeout_ms` (<0 = forever).
/// Returns an invalid Socket on timeout or on a transient accept error
/// (EINTR, ECONNABORTED); throws wake::Error(kNetwork) when the listener
/// itself is dead (closed / shut down).
Socket Accept(const Socket& listener, int64_t timeout_ms);

/// Connects to host:port within `timeout_ms`. Throws
/// wake::Error(kNetwork) — a retryable category — on refusal or timeout.
Socket Connect(const std::string& host, uint16_t port, int64_t timeout_ms);

/// Writes all `n` bytes within `timeout_ms` (<0 = forever; the budget
/// spans the whole write, not each syscall). Throws wake::Error(kNetwork)
/// on timeout, reset, or a closed socket.
void SendAll(const Socket& sock, const void* data, size_t n,
             int64_t timeout_ms);

/// Result of RecvAll's first byte.
enum class RecvStatus : uint8_t {
  kOk,    // all n bytes read
  kEof,   // orderly shutdown before the FIRST byte (clean close)
  kIdle,  // idle_timeout_ms elapsed before the FIRST byte
};

/// Reads exactly `n` bytes. The first byte may wait `idle_timeout_ms`
/// (<0 = forever) and its absence is reported as kIdle/kEof rather than
/// an error — that is the server's heartbeat poll. Once the first byte
/// arrives the remaining bytes must land within `io_timeout_ms`; EOF or
/// timeout mid-buffer throws wake::Error(kNetwork) ("torn read").
RecvStatus RecvAll(const Socket& sock, void* data, size_t n,
                   int64_t idle_timeout_ms, int64_t io_timeout_ms);

/// Test hook: cap each send/recv syscall at `max_bytes` (0 = off).
/// Process-wide; the partial-write chaos tests use this to force frame
/// fragmentation on both ends of a loopback connection.
void TestSetIoChunk(size_t max_bytes);

}  // namespace net
}  // namespace wake

#endif  // WAKE_COMMON_SOCKET_H_
