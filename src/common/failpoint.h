// Failpoints: compile-time-zero-cost fault injection for chaos testing.
//
// A failpoint is a named site in engine code where a test (or an
// operator, via the WAKE_FAIL environment variable) can inject a fault:
//
//   WAKE_FAILPOINT("reader.read_batch");
//
// In a normal build the macro expands to `((void)0)` — no code, no
// branch, no string. When the library is configured with
// `-DWAKE_FAILPOINTS=ON` the macro consults a process-wide registry and
// may throw wake::Error(kExecution) or sleep, according to the spec
// configured for that name:
//
//   error(P)      throw with probability P (0 < P <= 1)
//   delay(Nms)    sleep N milliseconds (also: delay(N))
//   off           disable
//
// Any spec may carry a `*N` suffix capping how many times it fires
// (`error(1.0)*2` = fail the first two evaluations, then pass), which is
// what makes bounded-retry tests deterministic.
//
// Activation sources, later wins:
//  1. the WAKE_FAIL environment variable, parsed once at first use:
//       WAKE_FAIL="reader.read_batch=error(0.05);channel.send=delay(10ms)"
//  2. programmatic failpoint::Configure / Reset (what chaos tests use).
//
// Probability draws use a per-failpoint counter mixed through a fixed
// 64-bit hash — deterministic for a given evaluation sequence, no global
// RNG state shared with the engines.
//
// Current injection sites (grep WAKE_FAILPOINT for the live list):
//   reader.read_batch    ReaderNode, once per partition (bounded retry
//                        absorbs transient errors: 3 attempts, backoff)
//   channel.send         Channel<T>::Send / SendAll
//   worker_pool.dispatch WorkerPool loop-runner, once per claimed morsel
//   join.build           HashJoinNode build-side insert
//   net.accept           Server accept loop, once per inbound connection
//   net.read             net::RecvAll, once per socket read
//   net.write            net::SendAll, once per socket write
//   net.serialize        Server snapshot encode, once per snapshot
//   ingest.flush         LiveTable tablet flush, once per seal (a failed
//                        flush keeps the tablet queryable in memory)
#ifndef WAKE_COMMON_FAILPOINT_H_
#define WAKE_COMMON_FAILPOINT_H_

#include <cstdint>
#include <string>

#ifndef WAKE_FAILPOINTS

#define WAKE_FAILPOINT(name) ((void)0)

#else

#define WAKE_FAILPOINT(name) ::wake::failpoint::Evaluate(name)

#endif  // WAKE_FAILPOINTS

namespace wake {
namespace failpoint {

// The registry API is compiled unconditionally (it is tiny and lets
// tests be written against one interface); only the Evaluate calls in
// engine code are compiled out. Without WAKE_FAILPOINTS a configured
// registry simply never fires.

/// Replaces the spec for one failpoint. `spec` is the syntax above
/// ("error(0.05)", "delay(10ms)", "error(1.0)*2", "off"); throws
/// wake::Error on a malformed spec.
void Configure(const std::string& name, const std::string& spec);

/// Parses a full "name=spec;name=spec" activation string (WAKE_FAIL
/// syntax) on top of the current registry.
void ConfigureFromString(const std::string& activation);

/// Clears every configured failpoint and its hit counters.
void Reset();

/// Times the named failpoint actually fired (threw or slept).
uint64_t Hits(const std::string& name);

/// The macro target: looks up `name`, fires per its spec. Never throws
/// anything but wake::Error.
void Evaluate(const char* name);

}  // namespace failpoint
}  // namespace wake

#endif  // WAKE_COMMON_FAILPOINT_H_
