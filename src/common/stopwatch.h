// Wall-clock stopwatch used by the benchmark harnesses and the pipelined
// execution trace (Fig 13).
#ifndef WAKE_COMMON_STOPWATCH_H_
#define WAKE_COMMON_STOPWATCH_H_

#include <chrono>

namespace wake {

/// Monotonic wall-clock stopwatch with millisecond/second readouts.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wake

#endif  // WAKE_COMMON_STOPWATCH_H_
