// StringDict: an append-only interned string pool backing dictionary-
// encoded string columns.
//
// Each distinct string is stored once and addressed by a dense int32 code
// (its insertion index). Alongside every entry the pool keeps the entry's
// seed-free FNV-1a hash, so hashing a dict-encoded row is one array load +
// one MixHash instead of a byte loop — and produces exactly the same row
// hash as the plain-string path (see common/hash.h).
//
// Sharing contract: dicts are shared between columns via shared_ptr
// (slices, gathers, and appends of same-dict columns just alias the
// pointer). A dict that is visible to more than one Column is treated as
// immutable; Column's append paths copy-on-write before interning into a
// shared dict, so concurrent readers of published columns never observe
// mutation.
#ifndef WAKE_COMMON_STRING_DICT_H_
#define WAKE_COMMON_STRING_DICT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/flat_hash.h"
#include "common/hash.h"

namespace wake {

class StringDict {
 public:
  /// Code returned by Find for strings not in the pool.
  static constexpr int32_t kNotFound = -1;

  StringDict() : id_(NextId()) {}
  /// Deep copy (entries, hashes, and lookup index); codes are preserved,
  /// so columns can swap a shared dict for a private clone in place. The
  /// clone gets a fresh id: caches keyed on it never confuse a clone (or
  /// a recycled allocation) with the original.
  StringDict(const StringDict& other)
      : entries_(other.entries_),
        hashes_(other.hashes_),
        index_(other.index_),
        id_(NextId()) {}
  StringDict& operator=(const StringDict& other) {
    entries_ = other.entries_;
    hashes_ = other.hashes_;
    index_ = other.index_;
    id_ = NextId();
    return *this;
  }

  /// Process-unique identity for translation/memo caches. Unlike the
  /// address, ids are never reused, so a cache entry keyed on one cannot
  /// alias a dict that died and had its allocation recycled.
  uint64_t id() const { return id_; }

  /// Number of distinct entries.
  size_t size() const { return entries_.size(); }

  /// Code of `s`, interning it if absent.
  int32_t Intern(std::string_view s) {
    uint64_t h = FnvHash64(s.data(), s.size());
    int32_t code = FindHashed(s, h);
    if (code != kNotFound) return code;
    code = static_cast<int32_t>(entries_.size());
    entries_.emplace_back(s);
    hashes_.push_back(h);
    index_.Insert(h, static_cast<uint32_t>(code));
    return code;
  }

  /// Code of `s`, or kNotFound.
  int32_t Find(std::string_view s) const {
    return FindHashed(s, FnvHash64(s.data(), s.size()));
  }

  /// Entry for `code` (must be a valid code).
  const std::string& At(int32_t code) const {
    return entries_[static_cast<size_t>(code)];
  }

  /// Pre-computed FnvHash64 of entry `code`.
  uint64_t HashAt(int32_t code) const {
    return hashes_[static_cast<size_t>(code)];
  }

  /// Raw pre-hash array (size() entries) for tight per-row hash loops.
  const uint64_t* hash_data() const { return hashes_.data(); }

  void Reserve(size_t entries) {
    entries_.reserve(entries);
    hashes_.reserve(entries);
    index_.Reserve(entries);
  }

  /// Approximate heap footprint in bytes.
  size_t ByteSize() const {
    static const size_t kInlineCapacity = std::string().capacity();
    size_t bytes = entries_.capacity() * sizeof(std::string) +
                   hashes_.capacity() * sizeof(uint64_t) + index_.ByteSize();
    for (const auto& s : entries_) {
      if (s.capacity() > kInlineCapacity) bytes += s.capacity();
    }
    return bytes;
  }

 private:
  static uint64_t NextId() {
    static std::atomic<uint64_t> next{0};
    return ++next;
  }

  int32_t FindHashed(std::string_view s, uint64_t h) const {
    // Chains hold every code whose FNV hash collided; compare bytes.
    for (uint32_t cand = index_.Find(h); cand != FlatHashIndex::kNil;
         cand = index_.Next(cand)) {
      if (entries_[cand] == s) return static_cast<int32_t>(cand);
    }
    return kNotFound;
  }

  std::vector<std::string> entries_;  // code -> string
  std::vector<uint64_t> hashes_;      // code -> FnvHash64(string)
  FlatHashIndex index_;               // FnvHash64 -> code chains
  uint64_t id_;
};

using StringDictPtr = std::shared_ptr<StringDict>;

}  // namespace wake

#endif  // WAKE_COMMON_STRING_DICT_H_
