#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace wake {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking to the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace wake
