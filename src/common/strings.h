// Small string helpers shared by the CSV reader, dbgen, and the SQL-LIKE
// matcher used in filter expressions.
#ifndef WAKE_COMMON_STRINGS_H_
#define WAKE_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace wake {

/// Splits `s` on `delim`; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `delim`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& delim);

/// SQL LIKE match with '%' (any run) and '_' (any one char) wildcards.
bool LikeMatch(std::string_view text, std::string_view pattern);

/// True if `s` starts with / ends with `prefix`/`suffix`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...);

}  // namespace wake

#endif  // WAKE_COMMON_STRINGS_H_
