#include "common/worker_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "common/error.h"
#include "common/failpoint.h"

namespace wake {

// Shared state of one blocking parallel loop. Runner tasks (one per
// worker) claim indices from `next` until exhausted; `active` counts
// runners still inside body calls so the caller can wait for the last
// claimed index to finish, not just for the cursor to empty.
struct WorkerPool::LoopState {
  std::atomic<size_t> next{0};
  size_t total = 0;
  size_t grain = 1;
  const std::function<void(size_t, size_t)>* body = nullptr;
  std::atomic<size_t> done{0};
  std::mutex mu;
  std::condition_variable all_done;
  std::exception_ptr error;  // first failure, rethrown on the caller
};

WorkerPool::WorkerPool(size_t workers) {
  size_t spawn = workers > 0 ? workers - 1 : 0;
  queues_.resize(spawn);
  threads_.reserve(spawn);
  for (size_t i = 0; i < spawn; ++i) {
    threads_.emplace_back([this, i] { WorkerMain(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

size_t WorkerPool::DefaultWorkers() {
  if (const char* env = std::getenv("WAKE_WORKERS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) return static_cast<size_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

WorkerPool& WorkerPool::Global() {
  static WorkerPool pool(DefaultWorkers());
  return pool;
}

void WorkerPool::Submit(std::function<void()> task) {
  if (queues_.empty()) {
    // No spawned threads: run inline (serial pool).
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queues_[next_queue_].push_back(std::move(task));
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  work_ready_.notify_one();
}

bool WorkerPool::PopOrSteal(size_t slot, std::function<void()>* task) {
  std::lock_guard<std::mutex> lock(mu_);
  // Own deque first, newest task (LIFO keeps caches warm) …
  if (!queues_[slot].empty()) {
    *task = std::move(queues_[slot].back());
    queues_[slot].pop_back();
    return true;
  }
  // … then steal the oldest task from a sibling (FIFO takes the work the
  // owner is furthest from touching).
  for (size_t i = 1; i < queues_.size(); ++i) {
    size_t victim = (slot + i) % queues_.size();
    if (!queues_[victim].empty()) {
      *task = std::move(queues_[victim].front());
      queues_[victim].pop_front();
      return true;
    }
  }
  return false;
}

void WorkerPool::WorkerMain(size_t slot) {
  for (;;) {
    std::function<void()> task;
    if (PopOrSteal(slot, &task)) {
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    work_ready_.wait(lock, [&] {
      if (shutdown_) return true;
      for (const auto& q : queues_) {
        if (!q.empty()) return true;
      }
      return false;
    });
    if (shutdown_) {
      bool any = false;
      for (const auto& q : queues_) any = any || !q.empty();
      if (!any) return;
    }
  }
}

void WorkerPool::RunLoop(LoopState* state) {
  for (;;) {
    size_t begin = state->next.fetch_add(state->grain);
    if (begin >= state->total) break;
    size_t end = std::min(begin + state->grain, state->total);
    try {
      // Inside the try so an injected fault rides the loop's existing
      // first-error capture instead of unwinding a pool thread.
      WAKE_FAILPOINT("worker_pool.dispatch");
      (*state->body)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->mu);
      if (!state->error) state->error = std::current_exception();
    }
    size_t finished =
        state->done.fetch_add(end - begin) + (end - begin);
    if (finished >= state->total) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->all_done.notify_all();
      break;
    }
  }
}

void WorkerPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (queues_.empty() || n <= grain) {
    // Serial pool or a single morsel: run inline, in range order.
    for (size_t begin = 0; begin < n; begin += grain) {
      body(begin, std::min(begin + grain, n));
    }
    return;
  }
  // Heap-owned so a surplus runner firing after the caller returned still
  // sees a live cursor (it reads `next`, finds the loop exhausted, and
  // exits without touching `body`, whose referent died with the caller).
  auto state = std::make_shared<LoopState>();
  state->total = n;
  state->grain = grain;
  state->body = &body;
  // One runner per spawned thread (the caller is the final runner). More
  // runners than morsels is harmless: surplus runners see an exhausted
  // cursor and return immediately.
  size_t morsels = (n + grain - 1) / grain;
  size_t runners = std::min(queues_.size(), morsels - 1);
  for (size_t i = 0; i < runners; ++i) {
    Submit([state] { RunLoop(state.get()); });
  }
  RunLoop(state.get());
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->all_done.wait(
        lock, [&] { return state->done.load() >= state->total; });
  }
  if (state->error) std::rethrow_exception(state->error);
}

void WorkerPool::ParallelShards(size_t shards,
                                const std::function<void(size_t)>& body) {
  ParallelFor(shards, 1,
              [&body](size_t begin, size_t /*end*/) { body(begin); });
}

WorkerPool* ResolveWorkerPool(size_t workers,
                              std::unique_ptr<WorkerPool>* owned) {
  if (workers == 0) {
    return WorkerPool::DefaultWorkers() > 1 ? &WorkerPool::Global() : nullptr;
  }
  if (workers > 1) {
    *owned = std::make_unique<WorkerPool>(workers);
    return owned->get();
  }
  return nullptr;
}

}  // namespace wake
