#include "common/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/strings.h"

namespace wake {
namespace net {

namespace {

std::atomic<size_t> g_io_chunk{0};

[[noreturn]] void ThrowNet(const std::string& what) {
  throw Error(what, ErrorCategory::kNetwork);
}

[[noreturn]] void ThrowErrno(const std::string& what) {
  ThrowNet(what + ": " + strerror(errno));
}

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    ThrowErrno("fcntl(O_NONBLOCK)");
  }
}

/// Remaining budget of a deadline started `elapsed` ago; <0 = infinite.
int PollTimeout(int64_t total_ms,
                std::chrono::steady_clock::time_point start) {
  if (total_ms < 0) return -1;
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  int64_t left = total_ms - elapsed;
  return left > 0 ? static_cast<int>(left) : 0;
}

/// poll() one fd for `events`, tolerating EINTR. Returns true when ready.
bool PollOne(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    int rc = poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) ThrowErrno("poll");
  }
}

sockaddr_in ResolveV4(const std::string& host, uint16_t port) {
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const char* node = host.empty() ? "0.0.0.0" : host.c_str();
  if (inet_pton(AF_INET, node, &addr.sin_addr) != 1) {
    ThrowNet("cannot parse IPv4 address '" + host + "'");
  }
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Socket Listen(const std::string& host, uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) ThrowErrno("socket");
  Socket sock(fd);
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = ResolveV4(host, port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ThrowErrno(StrFormat("bind %s:%u", host.c_str(), port));
  }
  if (::listen(fd, backlog) < 0) ThrowErrno("listen");
  SetNonBlocking(fd);
  return sock;
}

uint16_t LocalPort(const Socket& listener) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    ThrowErrno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Socket Accept(const Socket& listener, int64_t timeout_ms) {
  if (!PollOne(listener.fd(), POLLIN,
               timeout_ms < 0 ? -1 : static_cast<int>(timeout_ms))) {
    return Socket();  // timeout
  }
  int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return Socket();  // transient; caller loops
    }
    ThrowErrno("accept");
  }
  Socket sock(fd);
  SetNonBlocking(fd);
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Socket Connect(const std::string& host, uint16_t port, int64_t timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) ThrowErrno("socket");
  Socket sock(fd);
  SetNonBlocking(fd);
  sockaddr_in addr = ResolveV4(host, port);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    ThrowErrno(StrFormat("connect %s:%u", host.c_str(), port));
  }
  if (rc < 0) {
    if (!PollOne(fd, POLLOUT,
                 timeout_ms < 0 ? -1 : static_cast<int>(timeout_ms))) {
      ThrowNet(StrFormat("connect %s:%u: timed out after %lld ms",
                         host.c_str(), port,
                         static_cast<long long>(timeout_ms)));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      ThrowNet(StrFormat("connect %s:%u: %s", host.c_str(), port,
                         strerror(err != 0 ? err : errno)));
    }
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

void SendAll(const Socket& sock, const void* data, size_t n,
             int64_t timeout_ms) {
  WAKE_FAILPOINT("net.write");
  if (!sock.valid()) ThrowNet("send on closed socket");
  const char* p = static_cast<const char*>(data);
  auto start = std::chrono::steady_clock::now();
  size_t sent = 0;
  while (sent < n) {
    size_t chunk = n - sent;
    size_t cap = g_io_chunk.load(std::memory_order_relaxed);
    if (cap != 0 && chunk > cap) chunk = cap;
    ssize_t rc = ::send(sock.fd(), p + sent, chunk, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      int left = PollTimeout(timeout_ms, start);
      if (timeout_ms >= 0 && left == 0) {
        ThrowNet(StrFormat("write stalled: %zu/%zu bytes after %lld ms "
                           "(slow or dead peer)",
                           sent, n, static_cast<long long>(timeout_ms)));
      }
      PollOne(sock.fd(), POLLOUT, left);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    ThrowErrno("send");
  }
}

RecvStatus RecvAll(const Socket& sock, void* data, size_t n,
                   int64_t idle_timeout_ms, int64_t io_timeout_ms) {
  WAKE_FAILPOINT("net.read");
  if (!sock.valid()) ThrowNet("recv on closed socket");
  char* p = static_cast<char*>(data);
  size_t got = 0;
  auto start = std::chrono::steady_clock::now();
  bool first_byte = true;
  while (got < n) {
    size_t chunk = n - got;
    size_t cap = g_io_chunk.load(std::memory_order_relaxed);
    if (cap != 0 && chunk > cap) chunk = cap;
    ssize_t rc = ::recv(sock.fd(), p + got, chunk, 0);
    if (rc > 0) {
      if (first_byte) {
        // The idle wait ended; the rest of the buffer runs on the I/O
        // budget, measured from the first byte.
        first_byte = false;
        start = std::chrono::steady_clock::now();
      }
      got += static_cast<size_t>(rc);
      continue;
    }
    if (rc == 0) {
      if (got == 0) return RecvStatus::kEof;
      ThrowNet(StrFormat("torn read: peer closed after %zu/%zu bytes", got,
                         n));
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      int64_t budget = first_byte ? idle_timeout_ms : io_timeout_ms;
      int left = PollTimeout(budget, start);
      if (budget >= 0 && left == 0) {
        if (first_byte) return RecvStatus::kIdle;
        ThrowNet(StrFormat("torn read: %zu/%zu bytes after %lld ms", got, n,
                           static_cast<long long>(budget)));
      }
      PollOne(sock.fd(), POLLIN, left);
      continue;
    }
    if (errno == EINTR) continue;
    ThrowErrno("recv");
  }
  return RecvStatus::kOk;
}

void TestSetIoChunk(size_t max_bytes) {
  g_io_chunk.store(max_bytes, std::memory_order_relaxed);
}

}  // namespace net
}  // namespace wake
