#include "common/failpoint.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/error.h"

namespace wake {
namespace failpoint {

namespace {

struct Spec {
  enum class Kind { kOff, kError, kDelay };
  Kind kind = Spec::Kind::kOff;
  double probability = 1.0;
  int64_t delay_ms = 0;
  uint64_t max_hits = 0;  // 0 = unlimited
  uint64_t draws = 0;     // evaluations so far (for the probability hash)
  uint64_t hits = 0;      // times actually fired
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, Spec> specs;
  bool env_loaded = false;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all threads
  return *registry;
}

// splitmix64: a fixed, seedless mixer — deterministic per (name, draw).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashName(const char* name) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (const char* p = name; *p != '\0'; ++p) {
    h = (h ^ static_cast<uint64_t>(*p)) * 1099511628211ULL;
  }
  return h;
}

Spec ParseSpec(const std::string& text) {
  Spec spec;
  std::string s = text;
  // Optional "*N" hit cap suffix.
  size_t star = s.rfind('*');
  if (star != std::string::npos && star > s.rfind(')')) {
    spec.max_hits = std::strtoull(s.c_str() + star + 1, nullptr, 10);
    CheckArg(spec.max_hits > 0, "failpoint spec: bad hit cap in '" + text +
                                    "'");
    s = s.substr(0, star);
  }
  if (s == "off" || s.empty()) {
    spec.kind = Spec::Kind::kOff;
    return spec;
  }
  size_t open = s.find('(');
  size_t close = s.rfind(')');
  std::string op = open == std::string::npos ? s : s.substr(0, open);
  std::string arg;
  if (open != std::string::npos) {
    CheckArg(close != std::string::npos && close > open,
             "failpoint spec: unbalanced parens in '" + text + "'");
    arg = s.substr(open + 1, close - open - 1);
  }
  if (op == "error") {
    spec.kind = Spec::Kind::kError;
    spec.probability = arg.empty() ? 1.0 : std::atof(arg.c_str());
    CheckArg(spec.probability > 0.0 && spec.probability <= 1.0,
             "failpoint spec: error probability must be in (0,1] in '" +
                 text + "'");
  } else if (op == "delay") {
    spec.kind = Spec::Kind::kDelay;
    // Accept "10ms" or plain "10".
    spec.delay_ms = std::strtoll(arg.c_str(), nullptr, 10);
    CheckArg(spec.delay_ms > 0,
             "failpoint spec: bad delay in '" + text + "'");
  } else {
    throw Error("failpoint spec: unknown action '" + op + "' in '" + text +
                "'");
  }
  return spec;
}

void LoadEnvLocked(Registry& registry) {
  if (registry.env_loaded) return;
  registry.env_loaded = true;
  const char* env = std::getenv("WAKE_FAIL");
  if (env == nullptr || *env == '\0') return;
  std::string activation(env);
  size_t start = 0;
  while (start < activation.size()) {
    size_t end = activation.find(';', start);
    if (end == std::string::npos) end = activation.size();
    std::string entry = activation.substr(start, end - start);
    size_t eq = entry.find('=');
    CheckArg(eq != std::string::npos,
             "WAKE_FAIL: entry without '=': '" + entry + "'");
    registry.specs[entry.substr(0, eq)] = ParseSpec(entry.substr(eq + 1));
    start = end + 1;
  }
}

}  // namespace

void Configure(const std::string& name, const std::string& spec) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  LoadEnvLocked(registry);
  registry.specs[name] = ParseSpec(spec);
}

void ConfigureFromString(const std::string& activation) {
  size_t start = 0;
  while (start < activation.size()) {
    size_t end = activation.find(';', start);
    if (end == std::string::npos) end = activation.size();
    std::string entry = activation.substr(start, end - start);
    size_t eq = entry.find('=');
    CheckArg(eq != std::string::npos,
             "failpoint activation: entry without '=': '" + entry + "'");
    Configure(entry.substr(0, eq), entry.substr(eq + 1));
    start = end + 1;
  }
}

void Reset() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.specs.clear();
  registry.env_loaded = true;  // an explicit Reset overrides WAKE_FAIL
}

uint64_t Hits(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.specs.find(name);
  return it == registry.specs.end() ? 0 : it->second.hits;
}

void Evaluate(const char* name) {
  Spec::Kind kind;
  int64_t delay_ms = 0;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    LoadEnvLocked(registry);
    if (registry.specs.empty()) return;
    auto it = registry.specs.find(name);
    if (it == registry.specs.end()) return;
    Spec& spec = it->second;
    if (spec.kind == Spec::Kind::kOff) return;
    if (spec.max_hits != 0 && spec.hits >= spec.max_hits) return;
    uint64_t draw = spec.draws++;
    if (spec.probability < 1.0) {
      double u = static_cast<double>(Mix(HashName(name) ^ draw) >> 11) *
                 (1.0 / 9007199254740992.0);  // uniform [0,1)
      if (u >= spec.probability) return;
    }
    ++spec.hits;
    kind = spec.kind;
    delay_ms = spec.delay_ms;
  }
  // Fire outside the registry lock.
  if (kind == Spec::Kind::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    return;
  }
  throw Error(std::string("failpoint '") + name + "' injected error",
              ErrorCategory::kExecution);
}

}  // namespace failpoint
}  // namespace wake
