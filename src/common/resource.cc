#include "common/resource.h"

#include "common/error.h"

namespace wake {

const char* BreachReasonName(BreachReason reason) {
  switch (reason) {
    case BreachReason::kNone: return "none";
    case BreachReason::kMemory: return "memory";
    case BreachReason::kDeadline: return "deadline";
    case BreachReason::kRowsScanned: return "rows-scanned";
    case BreachReason::kSessionMemory: return "session-memory";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// ResourceTracker
// ---------------------------------------------------------------------------

void ResourceTracker::Arm(const QueryBudget& budget, ResourceTracker* parent) {
  memory_limit_ = budget.memory_limit_bytes;
  max_rows_ = budget.max_rows_scanned;
  if (budget.timeout_ms > 0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(budget.timeout_ms);
  }
  parent_.store(parent, std::memory_order_release);
}

void ResourceTracker::ArmSessionLimit(size_t total_memory_bytes) {
  memory_limit_ = total_memory_bytes;
  session_meter_ = true;
}

void ResourceTracker::Charge(size_t bytes) {
  if (bytes == 0 || released_.load(std::memory_order_acquire)) return;
  int64_t now =
      used_.fetch_add(static_cast<int64_t>(bytes),
                      std::memory_order_relaxed) +
      static_cast<int64_t>(bytes);
  if (memory_limit_ != 0 && now > static_cast<int64_t>(memory_limit_) &&
      !session_meter_) {
    Trigger(BreachReason::kMemory);
  }
  if (ResourceTracker* parent = parent_.load(std::memory_order_acquire)) {
    parent->Charge(bytes);
    // The session meter never latches: it is a live gauge, and the query
    // whose charge finds it over the line is the one that breaches. Once
    // that query settles its balance the headroom is back for others.
    if (parent->over_limit()) Trigger(BreachReason::kSessionMemory);
  }
}

void ResourceTracker::Credit(size_t bytes) {
  if (bytes == 0 || released_.load(std::memory_order_acquire)) return;
  used_.fetch_sub(static_cast<int64_t>(bytes), std::memory_order_relaxed);
  if (ResourceTracker* parent = parent_.load(std::memory_order_acquire)) {
    parent->Credit(bytes);
  }
}

void ResourceTracker::Sync(size_t now_bytes, size_t* accounted) {
  if (now_bytes > *accounted) {
    Charge(now_bytes - *accounted);
  } else if (now_bytes < *accounted) {
    Credit(*accounted - now_bytes);
  }
  *accounted = now_bytes;
}

void ResourceTracker::ChargeRows(size_t rows) {
  if (rows == 0 || released_.load(std::memory_order_acquire)) return;
  size_t now = rows_.fetch_add(rows, std::memory_order_relaxed) + rows;
  if (max_rows_ != 0 && now > max_rows_) Trigger(BreachReason::kRowsScanned);
}

bool ResourceTracker::CheckBreach() {
  if (!breached() && has_deadline_ &&
      std::chrono::steady_clock::now() >= deadline_) {
    Trigger(BreachReason::kDeadline);
  }
  return breached();
}

void ResourceTracker::Trigger(BreachReason reason) {
  uint8_t expected = static_cast<uint8_t>(BreachReason::kNone);
  reason_.compare_exchange_strong(expected, static_cast<uint8_t>(reason),
                                  std::memory_order_acq_rel);
  // The session meter (no callback) just reports; per-query trackers fire
  // their cooperative-stop hook exactly once.
  bool was_notified = notified_.exchange(true, std::memory_order_acq_rel);
  if (!was_notified && on_breach_) on_breach_();
}

std::string ResourceTracker::BreachMessage() const {
  switch (reason()) {
    case BreachReason::kMemory:
      return "memory limit exceeded (" + std::to_string(used_bytes()) +
             " bytes used, limit " + std::to_string(memory_limit_) + ")";
    case BreachReason::kDeadline:
      return "deadline exceeded (timeout elapsed before completion)";
    case BreachReason::kRowsScanned:
      return "row-scan limit exceeded (" + std::to_string(rows_scanned()) +
             " rows scanned, limit " + std::to_string(max_rows_) + ")";
    case BreachReason::kSessionMemory:
      return "session memory limit exceeded (query charged " +
             std::to_string(used_bytes()) + " bytes)";
    case BreachReason::kNone:
      break;
  }
  return "no resource breach";
}

void ResourceTracker::Release() {
  if (released_.exchange(true, std::memory_order_acq_rel)) return;
  if (ResourceTracker* parent = parent_.load(std::memory_order_acquire)) {
    int64_t outstanding = used_.load(std::memory_order_relaxed);
    if (outstanding > 0) parent->Credit(static_cast<size_t>(outstanding));
    parent_.store(nullptr, std::memory_order_release);
  }
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

AdmissionController::AdmissionController(size_t max_active, size_t max_queued)
    : max_active_(max_active), max_queued_(max_queued) {
  CheckArg(max_active > 0, "admission controller needs max_active > 0");
}

AdmissionController::TicketPtr AdmissionController::Submit() {
  std::lock_guard<std::mutex> lock(mu_);
  auto ticket = std::make_shared<Ticket>();
  if (active_ < max_active_ && queue_.empty()) {
    ticket->state_ = Ticket::State::kAdmitted;
    ++active_;
    return ticket;
  }
  if (queue_.size() >= max_queued_) {
    throw Error("admission queue full (" + std::to_string(queue_.size()) +
                    " queued, " + std::to_string(active_) + " active)",
                ErrorCategory::kQueueFull);
  }
  queue_.push_back(ticket);
  return ticket;
}

AdmissionController::Outcome AdmissionController::Await(
    const TicketPtr& ticket, int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  auto decided = [&] { return ticket->state_ != Ticket::State::kQueued; };
  if (timeout_ms > 0) {
    cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), decided);
  } else {
    cv_.wait(lock, decided);
  }
  if (ticket->state_ == Ticket::State::kQueued) {
    // Timed out while still queued: leave the line.
    ticket->state_ = Ticket::State::kTimedOut;
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (*it == ticket) {
        queue_.erase(it);
        break;
      }
    }
  }
  switch (ticket->state_) {
    case Ticket::State::kAdmitted: return Outcome::kAdmitted;
    case Ticket::State::kCancelled: return Outcome::kCancelled;
    default: return Outcome::kTimedOut;
  }
}

void AdmissionController::Cancel(const TicketPtr& ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ticket->state_ != Ticket::State::kQueued) return;
  ticket->state_ = Ticket::State::kCancelled;
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (*it == ticket) {
      queue_.erase(it);
      break;
    }
  }
  cv_.notify_all();
}

void AdmissionController::Release(const TicketPtr& ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ticket->state_ != Ticket::State::kAdmitted || ticket->released_) return;
  ticket->released_ = true;
  --active_;
  AdmitNextLocked();
}

void AdmissionController::AdmitNextLocked() {
  bool admitted_any = false;
  while (active_ < max_active_ && !queue_.empty()) {
    queue_.front()->state_ = Ticket::State::kAdmitted;
    queue_.pop_front();
    ++active_;
    admitted_any = true;
  }
  if (admitted_any) cv_.notify_all();
}

size_t AdmissionController::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

size_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace wake
