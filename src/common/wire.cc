#include "common/wire.h"

#include "common/strings.h"

namespace wake {
namespace wire {

namespace {

// Slice-by-8 tables: table[0] is the classic byte-at-a-time table;
// table[k][b] extends a CRC whose input still has k more zero bytes
// coming, so eight lookups advance the state by eight input bytes with no
// inter-lookup dependency chain (~8x the bytewise rate — this CRC guards
// every wire frame and every storage block, so it sits on the scan path).
struct CrcTable {
  uint32_t entries[8][256];
  CrcTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = entries[0][i];
      for (int t = 1; t < 8; ++t) {
        c = entries[0][c & 0xff] ^ (c >> 8);
        entries[t][i] = c;
      }
    }
  }
};

const CrcTable& Table() {
  static const CrcTable table;
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const CrcTable& table = Table();
  uint32_t c = 0xFFFFFFFFu;
  while (n >= 8) {
    c ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    c = table.entries[7][c & 0xff] ^ table.entries[6][(c >> 8) & 0xff] ^
        table.entries[5][(c >> 16) & 0xff] ^ table.entries[4][c >> 24] ^
        table.entries[3][p[4]] ^ table.entries[2][p[5]] ^
        table.entries[1][p[6]] ^ table.entries[0][p[7]];
    p += 8;
    n -= 8;
  }
  for (size_t i = 0; i < n; ++i) {
    c = table.entries[0][(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void EncodeFrameHeader(const FrameHeader& header, uint8_t* out) {
  auto le32 = [](uint8_t* p, uint32_t v) {
    p[0] = v & 0xff;
    p[1] = (v >> 8) & 0xff;
    p[2] = (v >> 16) & 0xff;
    p[3] = (v >> 24) & 0xff;
  };
  le32(out, kMagic);
  out[4] = header.version;
  out[5] = header.type;
  out[6] = 0;
  out[7] = 0;
  le32(out + 8, header.payload_len);
  le32(out + 12, header.crc);
}

FrameHeader DecodeFrameHeader(const uint8_t* data, size_t max_payload) {
  auto le32 = [](const uint8_t* p) {
    return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
  };
  uint32_t magic = le32(data);
  if (magic != kMagic) {
    throw Error(StrFormat("bad frame magic 0x%08x (stream out of sync?)",
                          magic),
                ErrorCategory::kProtocol);
  }
  FrameHeader header;
  header.version = data[4];
  if (header.version != kProtocolVersion) {
    throw Error(StrFormat("unsupported protocol version %u (want %u)",
                          header.version, kProtocolVersion),
                ErrorCategory::kProtocol);
  }
  if (data[6] != 0 || data[7] != 0) {
    throw Error("nonzero reserved bytes in frame header",
                ErrorCategory::kProtocol);
  }
  header.type = data[5];
  header.payload_len = le32(data + 8);
  header.crc = le32(data + 12);
  if (header.payload_len > max_payload) {
    throw Error(StrFormat("oversized frame: %u bytes (limit %zu)",
                          header.payload_len, max_payload),
                ErrorCategory::kProtocol);
  }
  return header;
}

}  // namespace wire
}  // namespace wake
