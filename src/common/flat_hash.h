// FlatHashIndex: open-addressing hash index shared by the join-build and
// group-by kernels.
//
// Maps 64-bit key hashes to chains of dense uint32 ids (build-row ids for
// joins, group ids for aggregation). The table itself never compares keys —
// it chains every id inserted under the same 64-bit hash, and callers verify
// real keys when walking a chain, so two distinct keys whose hashes collide
// are never merged.
//
// Layout: three parallel slot arrays (hash, chain head, chain tail) of
// power-of-two capacity, probed linearly from a Fibonacci-mixed home slot,
// plus one contiguous `next_` arena holding the id chains. Chains preserve
// insertion order (tail append), which keeps probe output deterministic and
// identical between bulk and incremental builds. Inserts are incremental
// (one partial at a time) with amortized doubling at 7/8 load; there is no
// erase, hence no tombstones. `Reset()` reuses the slot allocation for
// refresh-mode inputs.
#ifndef WAKE_COMMON_FLAT_HASH_H_
#define WAKE_COMMON_FLAT_HASH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace wake {

class FlatHashIndex {
 public:
  /// End-of-chain / not-found marker.
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  FlatHashIndex() { AllocTable(kMinCapacity); }

  /// Number of distinct hashes stored.
  size_t num_chains() const { return used_; }
  size_t capacity() const { return capacity_; }

  /// Drops all entries but keeps the slot allocation.
  void Reset() {
    for (Slot& s : slots_) s.head = kNil;
    next_.clear();
    used_ = 0;
  }

  /// Pre-sizes for `ids` inserts (an upper bound on distinct hashes).
  void Reserve(size_t ids) {
    next_.reserve(ids);
    size_t want = kMinCapacity;
    while (want * 7 < ids * 8) want <<= 1;
    if (want > capacity_) Rehash(want);
  }

  /// Head of the id chain stored under `h`, or kNil.
  uint32_t Find(uint64_t h) const {
    const size_t mask = capacity_ - 1;
    size_t s = HomeSlot(h);
    while (slots_[s].head != kNil) {
      if (slots_[s].hash == h) return slots_[s].head;
      s = (s + 1) & mask;
    }
    return kNil;
  }

  /// Successor of `id` in its chain, or kNil.
  uint32_t Next(uint32_t id) const { return next_[id]; }

  /// Hints the cache to load the home slot for `h` (probe loops prefetch a
  /// few hashes ahead to hide the slot-array miss latency).
  void Prefetch(uint64_t h) const { __builtin_prefetch(&slots_[HomeSlot(h)]); }

  /// Hints the cache to load `id`'s chain link (second pipeline stage of
  /// the join probe).
  void PrefetchChain(uint32_t id) const { __builtin_prefetch(&next_[id]); }

  /// Appends `id` to the chain for `h`. Ids must be inserted densely
  /// (0, 1, 2, ...) — they index the `next_` arena directly.
  void Insert(uint64_t h, uint32_t id) {
    if ((used_ + 1) * 8 > capacity_ * 7) Rehash(capacity_ * 2);
    const size_t mask = capacity_ - 1;
    size_t s = HomeSlot(h);
    while (slots_[s].head != kNil && slots_[s].hash != h) s = (s + 1) & mask;
    if (id >= next_.size()) next_.resize(id + 1, kNil);
    next_[id] = kNil;
    Slot& slot = slots_[s];
    if (slot.head == kNil) {
      ++used_;
      slot.hash = h;
      slot.head = id;
    } else {
      next_[slot.tail] = id;
    }
    slot.tail = id;
  }

  /// Approximate heap footprint in bytes (§8.2 memory accounting).
  size_t ByteSize() const {
    return slots_.capacity() * sizeof(Slot) +
           next_.capacity() * sizeof(uint32_t);
  }

 private:
  // 16 bytes: one probe touches a single cache line.
  struct Slot {
    uint64_t hash = 0;
    uint32_t head = kNil;  // kNil == empty slot
    uint32_t tail = 0;
  };

  static constexpr size_t kMinCapacity = 16;

  size_t HomeSlot(uint64_t h) const {
    // Fibonacci mixing: multiply by 2^64/phi, keep the top log2(cap) bits.
    return static_cast<size_t>((h * 0x9E3779B97F4A7C15ULL) >> shift_);
  }

  void AllocTable(size_t cap) {
    capacity_ = cap;
    shift_ = 64 - static_cast<unsigned>(63 - __builtin_clzll(cap));
    slots_.assign(cap, Slot{});
  }

  void Rehash(size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    AllocTable(new_cap);
    const size_t mask = capacity_ - 1;
    for (const Slot& o : old) {
      if (o.head == kNil) continue;
      size_t s = HomeSlot(o.hash);
      while (slots_[s].head != kNil) s = (s + 1) & mask;
      slots_[s] = o;
    }
  }

  size_t capacity_ = 0;
  unsigned shift_ = 64;
  size_t used_ = 0;             // occupied slots (distinct hashes)
  std::vector<Slot> slots_;
  std::vector<uint32_t> next_;  // id -> successor id chain arena
};

}  // namespace wake

#endif  // WAKE_COMMON_FLAT_HASH_H_
