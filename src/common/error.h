// Error type used across the wake library.
//
// Wake uses a single exception type for programmer / plan construction
// errors (bad column name, schema mismatch, malformed plan). Data-path
// code avoids throwing in hot loops; validation happens at plan-build and
// partition-load boundaries.
#ifndef WAKE_COMMON_ERROR_H_
#define WAKE_COMMON_ERROR_H_

#include <stdexcept>
#include <string>

namespace wake {

/// Exception thrown for invalid usage of the wake API (unknown column,
/// type mismatch, malformed plan, corrupt file).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

/// Throws wake::Error with `message` if `condition` is false.
inline void CheckArg(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

}  // namespace wake

#endif  // WAKE_COMMON_ERROR_H_
