// Error type used across the wake library.
//
// Wake uses a single exception type for programmer / plan construction
// errors (bad column name, schema mismatch, malformed plan). Data-path
// code avoids throwing in hot loops; validation happens at plan-build and
// partition-load boundaries.
//
// Every error carries a category so API users (wake::Db and friends) can
// dispatch without string-matching:
//   kParse      SQL text rejected by the lexer/parser (position() holds
//               the byte offset into the statement when known)
//   kPlan       plan construction / validation / optimization failure
//   kExecution  runtime failure while evaluating a valid plan
//   kCancelled  the query was cancelled cooperatively (QueryHandle::Cancel)
//   kResourceExhausted  a QueryBudget limit was crossed and the run's
//               breach policy was to fail (or the engine has no partial
//               to degrade to, e.g. the exact baseline)
//   kQueueFull  admission control rejected the run: the session's wait
//               queue was already at DbOptions::max_queued
//   kAdmissionTimeout  the run waited in the admission queue longer than
//               the session's admission timeout
#ifndef WAKE_COMMON_ERROR_H_
#define WAKE_COMMON_ERROR_H_

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace wake {

/// Classification of a wake::Error for programmatic dispatch.
enum class ErrorCategory : uint8_t {
  kParse,
  kPlan,
  kExecution,
  kCancelled,
  kResourceExhausted,
  kQueueFull,
  kAdmissionTimeout,
};

/// Human-readable category name ("parse", "plan", ...).
inline const char* ErrorCategoryName(ErrorCategory c) {
  switch (c) {
    case ErrorCategory::kParse: return "parse";
    case ErrorCategory::kPlan: return "plan";
    case ErrorCategory::kExecution: return "execution";
    case ErrorCategory::kCancelled: return "cancelled";
    case ErrorCategory::kResourceExhausted: return "resource-exhausted";
    case ErrorCategory::kQueueFull: return "queue-full";
    case ErrorCategory::kAdmissionTimeout: return "admission-timeout";
  }
  return "unknown";
}

/// Exception thrown for invalid usage of the wake API (unknown column,
/// type mismatch, malformed plan, corrupt file) and for cooperative query
/// cancellation.
class Error : public std::runtime_error {
 public:
  /// No position recorded.
  static constexpr size_t kNoPosition = static_cast<size_t>(-1);

  explicit Error(const std::string& message,
                 ErrorCategory category = ErrorCategory::kExecution,
                 size_t position = kNoPosition)
      : std::runtime_error(message), category_(category), position_(position) {}

  ErrorCategory category() const { return category_; }

  /// Byte offset into the SQL statement (parse errors), or kNoPosition.
  bool has_position() const { return position_ != kNoPosition; }
  size_t position() const { return position_; }

 private:
  ErrorCategory category_;
  size_t position_;
};

/// Throws wake::Error with `message` if `condition` is false.
inline void CheckArg(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

/// CheckArg variant for plan construction / validation sites (kPlan).
inline void CheckPlan(bool condition, const std::string& message) {
  if (!condition) throw Error(message, ErrorCategory::kPlan);
}

}  // namespace wake

#endif  // WAKE_COMMON_ERROR_H_
