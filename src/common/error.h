// Error type used across the wake library.
//
// Wake uses a single exception type for programmer / plan construction
// errors (bad column name, schema mismatch, malformed plan). Data-path
// code avoids throwing in hot loops; validation happens at plan-build and
// partition-load boundaries.
//
// Every error carries a category so API users (wake::Db and friends) can
// dispatch without string-matching:
//   kParse      SQL text rejected by the lexer/parser (position() holds
//               the byte offset into the statement when known)
//   kPlan       plan construction / validation / optimization failure
//   kExecution  runtime failure while evaluating a valid plan
//   kCancelled  the query was cancelled cooperatively (QueryHandle::Cancel)
//   kResourceExhausted  a QueryBudget limit was crossed and the run's
//               breach policy was to fail (or the engine has no partial
//               to degrade to, e.g. the exact baseline)
//   kQueueFull  admission control rejected the run: the session's wait
//               queue was already at DbOptions::max_queued
//   kAdmissionTimeout  the run waited in the admission queue longer than
//               the session's admission timeout
//   kNetwork    a socket-level failure (connect refused, read/write
//               timeout, connection reset) — the peer may be fine, retry
//               is reasonable
//   kProtocol   the byte stream violated the wire protocol (bad magic,
//               CRC mismatch, truncated or oversized frame, malformed
//               message) — retrying the same bytes cannot succeed
//   kUnavailable  the server is draining for shutdown (or otherwise
//               refusing new work); retry against a fresh connection
//
// Transient categories additionally answer retryable() == true and may
// carry a retry_after_ms() hint, which wake::Client's backoff loop
// honors in place of its own schedule.
#ifndef WAKE_COMMON_ERROR_H_
#define WAKE_COMMON_ERROR_H_

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace wake {

/// Classification of a wake::Error for programmatic dispatch.
enum class ErrorCategory : uint8_t {
  kParse,
  kPlan,
  kExecution,
  kCancelled,
  kResourceExhausted,
  kQueueFull,
  kAdmissionTimeout,
  kNetwork,
  kProtocol,
  kUnavailable,
};

/// Human-readable category name ("parse", "plan", ...).
inline const char* ErrorCategoryName(ErrorCategory c) {
  switch (c) {
    case ErrorCategory::kParse: return "parse";
    case ErrorCategory::kPlan: return "plan";
    case ErrorCategory::kExecution: return "execution";
    case ErrorCategory::kCancelled: return "cancelled";
    case ErrorCategory::kResourceExhausted: return "resource-exhausted";
    case ErrorCategory::kQueueFull: return "queue-full";
    case ErrorCategory::kAdmissionTimeout: return "admission-timeout";
    case ErrorCategory::kNetwork: return "network";
    case ErrorCategory::kProtocol: return "protocol";
    case ErrorCategory::kUnavailable: return "unavailable";
  }
  return "unknown";
}

/// True for categories a client may retry (possibly after a backoff):
/// transient contention (kQueueFull, kAdmissionTimeout), socket-level
/// failures (kNetwork), and server drain (kUnavailable). Parse/plan/
/// execution/protocol errors are deterministic — retrying cannot help.
inline bool ErrorCategoryRetryable(ErrorCategory c) {
  switch (c) {
    case ErrorCategory::kQueueFull:
    case ErrorCategory::kAdmissionTimeout:
    case ErrorCategory::kNetwork:
    case ErrorCategory::kUnavailable:
      return true;
    default:
      return false;
  }
}

/// Exception thrown for invalid usage of the wake API (unknown column,
/// type mismatch, malformed plan, corrupt file) and for cooperative query
/// cancellation.
class Error : public std::runtime_error {
 public:
  /// No position recorded.
  static constexpr size_t kNoPosition = static_cast<size_t>(-1);

  explicit Error(const std::string& message,
                 ErrorCategory category = ErrorCategory::kExecution,
                 size_t position = kNoPosition)
      : std::runtime_error(message), category_(category), position_(position) {}

  ErrorCategory category() const { return category_; }

  /// Byte offset into the SQL statement (parse errors), or kNoPosition.
  bool has_position() const { return position_ != kNoPosition; }
  size_t position() const { return position_; }

  /// True if retrying the operation may succeed (category-derived, see
  /// ErrorCategoryRetryable). wake::Client's backoff loop keys off this.
  bool retryable() const { return ErrorCategoryRetryable(category_); }

  /// Server-suggested wait before retrying, in milliseconds; 0 = no hint
  /// (use your own backoff schedule). Only meaningful when retryable().
  int64_t retry_after_ms() const { return retry_after_ms_; }
  Error& set_retry_after_ms(int64_t ms) {
    retry_after_ms_ = ms;
    return *this;
  }

 private:
  ErrorCategory category_;
  size_t position_;
  int64_t retry_after_ms_ = 0;
};

/// Throws wake::Error with `message` if `condition` is false.
inline void CheckArg(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

/// CheckArg variant for plan construction / validation sites (kPlan).
inline void CheckPlan(bool condition, const std::string& message) {
  if (!condition) throw Error(message, ErrorCategory::kPlan);
}

}  // namespace wake

#endif  // WAKE_COMMON_ERROR_H_
