// Deterministic random number generation used by dbgen, the WanderJoin
// baseline, and the test/bench harnesses. A small xoshiro-style generator
// keeps results identical across platforms (std::mt19937 distributions are
// implementation-defined for some adapters).
#ifndef WAKE_COMMON_RNG_H_
#define WAKE_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace wake {

/// splitmix64/xorshift-based deterministic RNG.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 to fill state.
    uint64_t z = seed;
    for (int i = 0; i < 2; ++i) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = x ^ (x >> 31);
    }
  }

  /// Uniform 64-bit value (xoroshiro128+).
  uint64_t Next() {
    uint64_t s0 = state_[0];
    uint64_t s1 = state_[1];
    uint64_t result = s0 + s1;
    s1 ^= s0;
    state_[0] = Rotl(s0, 55) ^ s1 ^ (s1 << 14);
    state_[1] = Rotl(s1, 36);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % range);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Standard normal via Box-Muller.
  double Normal() {
    double u1 = UniformDouble();
    double u2 = UniformDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Picks one element of `items` uniformly.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[static_cast<size_t>(Next() % items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Next() % i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Zipf-distributed integer in [1, n] with exponent `s` (rejection-free
  /// inverse-CDF approximation; adequate for synthetic workloads).
  int64_t Zipf(int64_t n, double s) {
    // Precomputing the harmonic normalizer each call would be O(n); use the
    // standard approximation for s != 1 via the integral of x^-s.
    double u = UniformDouble();
    if (s == 1.0) {
      double hn = std::log(static_cast<double>(n)) + 0.5772156649;
      double target = u * hn;
      double v = std::exp(target - 0.5772156649);
      int64_t k = static_cast<int64_t>(v);
      return std::min<int64_t>(std::max<int64_t>(k, 1), n);
    }
    double t = std::pow(static_cast<double>(n), 1.0 - s);
    double v = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
    int64_t k = static_cast<int64_t>(v);
    return std::min<int64_t>(std::max<int64_t>(k, 1), n);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[2];
};

}  // namespace wake

#endif  // WAKE_COMMON_RNG_H_
