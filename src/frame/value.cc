#include "frame/value.h"

#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace wake {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kFloat64:
      return "float64";
    case ValueType::kString:
      return "string";
    case ValueType::kDate:
      return "date";
    case ValueType::kBool:
      return "bool";
  }
  return "?";
}

std::string Value::ToString() const {
  if (is_null) return "NULL";
  switch (type) {
    case ValueType::kInt64:
      return std::to_string(i);
    case ValueType::kFloat64: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", d);
      return buf;
    }
    case ValueType::kString:
      return s;
    case ValueType::kDate:
      return FormatDate(i);
    case ValueType::kBool:
      return i ? "true" : "false";
  }
  return "?";
}

bool Value::operator==(const Value& other) const {
  if (is_null || other.is_null) return is_null && other.is_null;
  if (type == ValueType::kString || other.type == ValueType::kString) {
    return type == other.type && s == other.s;
  }
  if (type == ValueType::kFloat64 || other.type == ValueType::kFloat64) {
    return AsDouble() == other.AsDouble();
  }
  return i == other.i;
}

bool Value::operator<(const Value& other) const {
  // NULLs sort first (consistent with the sort kernels).
  if (is_null != other.is_null) return is_null;
  if (is_null) return false;
  if (type == ValueType::kString) return s < other.s;
  if (type == ValueType::kFloat64 || other.type == ValueType::kFloat64) {
    return AsDouble() < other.AsDouble();
  }
  return i < other.i;
}

namespace {
// Howard Hinnant's days-from-civil algorithm.
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int64_t* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = yy + (*m <= 2);
}
}  // namespace

int64_t DateToDays(int year, int month, int day) {
  return DaysFromCivil(year, static_cast<unsigned>(month),
                       static_cast<unsigned>(day));
}

void DaysToDate(int64_t days, int* year, int* month, int* day) {
  int64_t y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  *year = static_cast<int>(y);
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

std::string FormatDate(int64_t days) {
  int y, m, d;
  DaysToDate(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

int64_t ParseDate(const std::string& text) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3 || m < 1 ||
      m > 12 || d < 1 || d > 31) {
    throw Error("malformed date: " + text);
  }
  return DateToDays(y, m, d);
}

int ExtractYear(int64_t days) {
  int y, m, d;
  DaysToDate(days, &y, &m, &d);
  return y;
}

}  // namespace wake
