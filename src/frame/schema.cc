#include "frame/schema.h"

#include <algorithm>

#include "common/error.h"

namespace wake {

size_t Schema::FieldIndex(const std::string& name) const {
  size_t idx = FindField(name);
  if (idx == npos) {
    std::string known;
    for (const auto& f : fields_) known += f.name + " ";
    throw Error("unknown column '" + name + "' (have: " + known + ")");
  }
  return idx;
}

size_t Schema::FindField(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return npos;
}

bool Schema::ClusteringContainedIn(
    const std::vector<std::string>& cols) const {
  if (clustering_key_.empty()) return false;
  for (const auto& k : clustering_key_) {
    if (std::find(cols.begin(), cols.end(), k) == cols.end()) return false;
  }
  return true;
}

bool Schema::AnyMutable(const std::vector<std::string>& names) const {
  for (const auto& n : names) {
    size_t idx = FindField(n);
    if (idx != npos && fields_[idx].mutable_attr) return true;
  }
  return false;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += ValueTypeName(fields_[i].type);
    if (fields_[i].mutable_attr) out += "*";
  }
  out += ")";
  return out;
}

}  // namespace wake
