#include "frame/schema.h"

#include <algorithm>

#include "common/error.h"

namespace wake {

size_t Schema::FieldIndex(const std::string& name) const {
  size_t idx = FindField(name);
  if (idx == npos) {
    std::string known;
    for (const auto& f : fields_) known += f.name + " ";
    throw Error("unknown column '" + name + "' (have: " + known + ")");
  }
  return idx;
}

size_t Schema::FindField(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return npos;
}

bool Schema::ClusteringContainedIn(
    const std::vector<std::string>& cols) const {
  if (clustering_key_.empty()) return false;
  for (const auto& k : clustering_key_) {
    if (std::find(cols.begin(), cols.end(), k) == cols.end()) return false;
  }
  return true;
}

bool Schema::AnyMutable(const std::vector<std::string>& names) const {
  for (const auto& n : names) {
    size_t idx = FindField(n);
    if (idx != npos && fields_[idx].mutable_attr) return true;
  }
  return false;
}

Schema Schema::Select(const std::vector<std::string>& names) const {
  Schema out;
  for (const auto& n : names) {
    // Duplicates would leave later slots unfillable for the projected
    // readers (they map file fields to output slots by name).
    if (out.HasField(n)) throw Error("duplicate column in selection: " + n);
    out.AddField(fields_[FieldIndex(n)]);
  }
  auto keep_if_present = [&](const std::vector<std::string>& key) {
    for (const auto& k : key) {
      if (!out.HasField(k)) return std::vector<std::string>{};
    }
    return key;
  };
  out.set_primary_key(keep_if_present(primary_key_));
  out.set_clustering_key(keep_if_present(clustering_key_));
  return out;
}

std::vector<size_t> Schema::ProjectionSlots(const Schema& narrowed) const {
  std::vector<size_t> slots(fields_.size(), npos);
  for (size_t f = 0; f < fields_.size(); ++f) {
    slots[f] = narrowed.FindField(fields_[f].name);
  }
  return slots;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += ValueTypeName(fields_[i].type);
    if (fields_[i].mutable_attr) out += "*";
  }
  out += ")";
  return out;
}

}  // namespace wake
