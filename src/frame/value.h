// Scalar value type and the logical type enum shared by columns, schemas,
// and expressions.
//
// Dates are stored as int64 days since 1970-01-01 (proleptic Gregorian) so
// date arithmetic and range filters are plain integer operations; kDate is
// a distinct logical type only for printing/CSV round trips.
#ifndef WAKE_FRAME_VALUE_H_
#define WAKE_FRAME_VALUE_H_

#include <cstdint>
#include <string>

namespace wake {

/// Logical column / scalar types.
enum class ValueType : uint8_t {
  kInt64,
  kFloat64,
  kString,
  kDate,  // int64 days since 1970-01-01
  kBool,  // int64 0/1
};

/// Human-readable type name ("int64", "float64", ...).
const char* ValueTypeName(ValueType type);

/// True for types physically stored as int64 (kInt64, kDate, kBool).
inline bool IsIntPhysical(ValueType type) {
  return type == ValueType::kInt64 || type == ValueType::kDate ||
         type == ValueType::kBool;
}

/// True for kInt64/kFloat64/kDate/kBool (usable in arithmetic).
inline bool IsNumeric(ValueType type) { return type != ValueType::kString; }

/// A nullable scalar. Small, copyable; used at API boundaries and in tests
/// (bulk data lives in columns).
struct Value {
  ValueType type = ValueType::kInt64;
  bool is_null = false;
  int64_t i = 0;
  double d = 0.0;
  std::string s;

  static Value Null(ValueType t) {
    Value v;
    v.type = t;
    v.is_null = true;
    return v;
  }
  static Value Int(int64_t x) {
    Value v;
    v.type = ValueType::kInt64;
    v.i = x;
    return v;
  }
  static Value Float(double x) {
    Value v;
    v.type = ValueType::kFloat64;
    v.d = x;
    return v;
  }
  static Value Str(std::string x) {
    Value v;
    v.type = ValueType::kString;
    v.s = std::move(x);
    return v;
  }
  static Value Date(int64_t days) {
    Value v;
    v.type = ValueType::kDate;
    v.i = days;
    return v;
  }
  static Value Bool(bool b) {
    Value v;
    v.type = ValueType::kBool;
    v.i = b ? 1 : 0;
    return v;
  }

  /// Numeric view (int types promote to double).
  double AsDouble() const { return IsIntPhysical(type) ? static_cast<double>(i) : d; }

  std::string ToString() const;

  bool operator==(const Value& other) const;
  bool operator<(const Value& other) const;
};

/// Days since epoch for a calendar date (proleptic Gregorian; y >= 1600).
int64_t DateToDays(int year, int month, int day);

/// Inverse of DateToDays.
void DaysToDate(int64_t days, int* year, int* month, int* day);

/// Formats days-since-epoch as "YYYY-MM-DD".
std::string FormatDate(int64_t days);

/// Parses "YYYY-MM-DD" into days-since-epoch. Throws wake::Error on
/// malformed input.
int64_t ParseDate(const std::string& text);

/// Year component of a days-since-epoch date.
int ExtractYear(int64_t days);

}  // namespace wake

#endif  // WAKE_FRAME_VALUE_H_
