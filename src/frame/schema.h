// Schema: ordered list of named, typed fields plus key metadata.
//
// Wake tracks two key notions per the paper (§3.1, §4.3):
//  - primary key: constant attributes uniquely identifying rows;
//  - clustering key: attributes governing physical placement across
//    partitions (drives merge-join and local-vs-shuffle aggregation).
// Schemas also record which attributes are *mutable* (their values may
// still change while the edf evolves, §2.3).
#ifndef WAKE_FRAME_SCHEMA_H_
#define WAKE_FRAME_SCHEMA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "frame/value.h"

namespace wake {

/// One named, typed column slot.
struct Field {
  std::string name;
  ValueType type = ValueType::kInt64;
  /// True if values in this attribute may change across edf states (§2.3).
  bool mutable_attr = false;

  Field() = default;
  Field(std::string n, ValueType t, bool mut = false)
      : name(std::move(n)), type(t), mutable_attr(mut) {}

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered field list with primary/clustering key metadata.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  Field* mutable_field(size_t i) { return &fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of `name`; throws wake::Error if absent.
  size_t FieldIndex(const std::string& name) const;

  /// Index of `name`, or npos if absent.
  size_t FindField(const std::string& name) const;
  static constexpr size_t npos = static_cast<size_t>(-1);

  bool HasField(const std::string& name) const {
    return FindField(name) != npos;
  }

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  /// Primary key column names (may be empty for raw fact rows).
  const std::vector<std::string>& primary_key() const { return primary_key_; }
  void set_primary_key(std::vector<std::string> key) {
    primary_key_ = std::move(key);
  }

  /// Clustering key column names (physical partition placement).
  const std::vector<std::string>& clustering_key() const {
    return clustering_key_;
  }
  void set_clustering_key(std::vector<std::string> key) {
    clustering_key_ = std::move(key);
  }

  /// True if `cols` contains every clustering key column (so a group-by on
  /// `cols` is a *local* operation, Case 1 in §2.2).
  bool ClusteringContainedIn(const std::vector<std::string>& cols) const;

  /// True if any field named in `names` is mutable.
  bool AnyMutable(const std::vector<std::string>& names) const;

  /// Schema narrowed to the named fields, in the given order; throws on
  /// unknown or duplicated names. Primary/clustering keys are kept only
  /// if every key column survives (a partial key identifies nothing).
  Schema Select(const std::vector<std::string>& names) const;

  /// For each field of this (full) schema: the matching field index in
  /// `narrowed`, or npos when the field was projected away. The projected
  /// readers (tbl/wpart/CSV, dbgen) use this to map file fields to output
  /// slots.
  std::vector<size_t> ProjectionSlots(const Schema& narrowed) const;

  bool SameFields(const Schema& other) const {
    return fields_ == other.fields_;
  }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::vector<std::string> primary_key_;
  std::vector<std::string> clustering_key_;
};

}  // namespace wake

#endif  // WAKE_FRAME_SCHEMA_H_
