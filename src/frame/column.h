// Column: typed, nullable, contiguous vector of values.
//
// Physical storage is selected by the logical type; kDate and kBool share
// int64 storage. String columns have two physical encodings behind one
// API:
//   - plain: one std::string per row (strings_), and
//   - dict:  one int32 code per row (codes_) into a shared, append-only
//     StringDict (common/string_dict.h) holding each distinct string once
//     alongside its pre-computed hash.
// Sources (CSV/tbl/wpart readers, dbgen) build dict columns, so the join
// and aggregation hot paths hash, compare, and gather dense codes instead
// of whole strings; plain columns remain for small derived results
// (SUBSTR output, literal broadcasts) and the two encodings hash
// identically, so they can always probe each other.
//
// The null mask is a bit-packed ValidityBitmap (frame/validity.h), one
// bit per row, allocated lazily — an empty bitmap means all rows are
// valid, which keeps the common non-null path branch-free, and lets the
// batch kernels (null propagation, hashing, filtering) run 64 rows per
// word op instead of a byte per row.
#ifndef WAKE_FRAME_COLUMN_H_
#define WAKE_FRAME_COLUMN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/string_dict.h"
#include "frame/validity.h"
#include "frame/value.h"

namespace wake {

/// A single column of a DataFrame.
class Column {
 public:
  /// Code stored for rows appended as null into dict columns (never
  /// dereferenced; the validity mask is checked first).
  static constexpr int32_t kNullCode = -1;

  Column() : type_(ValueType::kInt64) {}
  explicit Column(ValueType type) : type_(type) {}

  /// Convenience constructors for tests and generators.
  static Column FromInts(std::vector<int64_t> data,
                         ValueType type = ValueType::kInt64);
  static Column FromDoubles(std::vector<double> data);
  static Column FromStrings(std::vector<std::string> data);

  /// Empty dict-encoded string column with a fresh private dict; appends
  /// intern into it. This is how sources start their string columns.
  static Column NewDict();
  /// Dict-encoded column holding `data` (convenience for tests/benches).
  static Column DictFromStrings(const std::vector<std::string>& data);

  ValueType type() const { return type_; }
  void set_type(ValueType t) { type_ = t; }
  size_t size() const;

  /// --- typed access (caller must respect the type) ---
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  /// Plain-encoded rows only; empty for dict columns (use StringAt).
  const std::vector<std::string>& strings() const { return strings_; }
  std::vector<int64_t>* mutable_ints() { return &ints_; }
  std::vector<double>* mutable_doubles() { return &doubles_; }
  std::vector<std::string>* mutable_strings() { return &strings_; }

  /// --- dict encoding ---
  bool is_dict() const { return dict_ != nullptr; }
  const std::vector<int32_t>& codes() const { return codes_; }
  std::vector<int32_t>* mutable_codes() { return &codes_; }
  const StringDictPtr& dict() const { return dict_; }
  /// Dict-encoded column over an existing (shared) dict: row i holds
  /// `codes[i]` (kNullCode rows must be masked via `valid`). Used by the
  /// probe-side dict unification of cross-dict string joins and by
  /// parallel gathers that assemble codes off-column.
  static Column DictFromCodes(StringDictPtr dict, std::vector<int32_t> codes,
                              ValidityBitmap valid = {});
  /// Plain-encoded copy (identity copy for non-dict columns).
  Column DecodeDict() const;
  /// Dict-encoded copy with a fresh dict (identity copy for dict columns).
  Column EncodeDict() const;
  /// If this is an empty plain string column, switches it to dict encoding
  /// sharing `dict` (no-op otherwise). Accumulating consumers call this
  /// before their first append so comparators see codes from row one.
  void AdoptDict(const StringDictPtr& dict) {
    if (type_ == ValueType::kString && dict_ == nullptr && size() == 0) {
      dict_ = dict;
    }
  }

  /// Numeric value of row i promoted to double (0.0 for null).
  double DoubleAt(size_t i) const {
    return IsIntPhysical(type_) ? static_cast<double>(ints_[i]) : doubles_[i];
  }
  int64_t IntAt(size_t i) const { return ints_[i]; }
  /// String value of row i under either encoding (empty for null rows of
  /// dict columns).
  const std::string& StringAt(size_t i) const {
    if (dict_ == nullptr) return strings_[i];
    int32_t code = codes_[i];
    return code < 0 ? kEmptyString : dict_->At(code);
  }

  /// --- nulls ---
  bool has_nulls() const { return !valid_.empty(); }
  bool IsNull(size_t i) const { return !valid_.empty() && !valid_.Get(i); }
  bool IsValid(size_t i) const { return valid_.empty() || valid_.Get(i); }
  /// Marks row i null (allocates the mask on first use).
  void SetNull(size_t i);
  const ValidityBitmap& validity() const { return valid_; }
  ValidityBitmap* mutable_validity() { return &valid_; }
  void set_validity(ValidityBitmap v) { valid_ = std::move(v); }
  /// Byte-per-row compatibility overload (wire/disk decoders).
  void set_validity(std::vector<uint8_t> v) {
    valid_ = ValidityBitmap::FromBoolBytes(v.data(), v.size());
    CompactValidity();
  }
  /// Drops the mask if every row is valid.
  void CompactValidity();

  /// --- row-wise ---
  Value GetValue(size_t i) const;
  void AppendValue(const Value& v);
  void AppendNull();
  void AppendInt(int64_t x) { ints_.push_back(x); ExtendValidity(); }
  void AppendDouble(double x) { doubles_.push_back(x); ExtendValidity(); }
  void AppendString(std::string x);
  /// Appends row `i` of `src` (same logical type), preserving dict
  /// encoding when possible: an empty plain string column adopts `src`'s
  /// dict, same-dict appends copy the code, and cross-dict appends intern.
  void AppendFrom(const Column& src, size_t i);

  void Reserve(size_t n);
  void Clear();

  /// New column containing rows at `indices` (gather).
  Column Take(const std::vector<uint32_t>& indices) const;

  /// New column containing rows where mask[i] != 0.
  Column FilterBy(const std::vector<uint8_t>& mask) const;

  /// Appends all rows of `other` (must have same type). Dict handling: an
  /// empty plain destination adopts `other`'s dict; same-dict appends
  /// concatenate codes; cross-dict/cross-encoding appends remap through
  /// this column's dict (copy-on-write if the dict is shared).
  void AppendColumn(const Column& other);

  /// New column of rows [begin, end).
  Column Slice(size_t begin, size_t end) const;

  /// Three-way comparison of rows (this[i] vs other[j]); nulls sort first.
  int CompareRows(size_t i, const Column& other, size_t j) const;

  /// 64-bit hash of row i mixed into `seed` (used for join/group keys).
  /// Identical across string encodings: dict rows mix the entry's
  /// pre-computed FNV hash, plain rows hash the bytes.
  uint64_t HashRow(size_t i, uint64_t seed) const;

  /// Column-at-a-time hashing: mixes row i's hash into hashes[i] for the
  /// first n rows (one type dispatch per column instead of per row).
  /// Produces exactly HashRow(i, hashes[i]) for every row.
  void HashInto(uint64_t* hashes, size_t n) const {
    HashIntoRange(hashes, 0, n);
  }

  /// Ranged form for morsel-parallel kernels: mixes row r's hash into
  /// hashes[r - begin] for r in [begin, end).
  void HashIntoRange(uint64_t* hashes, size_t begin, size_t end) const;

  /// Approximate heap footprint in bytes (peak-memory accounting, §8.2).
  /// Dict columns count their codes plus the dict pool; a dict shared by
  /// k columns is counted k times (upper bound).
  size_t ByteSize() const;

  /// Selection-vector filter: rows where `pred` is valid and non-zero
  /// (bool/int64 storage). One truth-word pass + popcount sizes the
  /// output, then ctz iteration emits indices — no per-row byte mask.
  static std::vector<uint32_t> SelectionFrom(const Column& pred);

 private:
  void ExtendValidity() {
    if (!valid_.empty()) valid_.Append(true);
  }

  /// Dict pointer safe to intern into: clones the pool first if any other
  /// column shares it (published dicts stay immutable).
  StringDict* MutableDict();

  static const std::string kEmptyString;

  ValueType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;  // plain string rows
  std::vector<int32_t> codes_;        // dict string rows (when dict_ set)
  StringDictPtr dict_;
  ValidityBitmap valid_;  // empty == all valid
};

}  // namespace wake

#endif  // WAKE_FRAME_COLUMN_H_
