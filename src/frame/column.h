// Column: typed, nullable, contiguous vector of values.
//
// Physical storage is one of three vectors (int64 / double / string)
// selected by the logical type; kDate and kBool share int64 storage.
// The null mask is allocated lazily — an empty `valid_` means all rows are
// valid, which keeps the common non-null path branch-free.
#ifndef WAKE_FRAME_COLUMN_H_
#define WAKE_FRAME_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "frame/value.h"

namespace wake {

/// A single column of a DataFrame.
class Column {
 public:
  Column() : type_(ValueType::kInt64) {}
  explicit Column(ValueType type) : type_(type) {}

  /// Convenience constructors for tests and generators.
  static Column FromInts(std::vector<int64_t> data,
                         ValueType type = ValueType::kInt64);
  static Column FromDoubles(std::vector<double> data);
  static Column FromStrings(std::vector<std::string> data);

  ValueType type() const { return type_; }
  void set_type(ValueType t) { type_ = t; }
  size_t size() const;

  /// --- typed access (caller must respect the type) ---
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  std::vector<int64_t>* mutable_ints() { return &ints_; }
  std::vector<double>* mutable_doubles() { return &doubles_; }
  std::vector<std::string>* mutable_strings() { return &strings_; }

  /// Numeric value of row i promoted to double (0.0 for null).
  double DoubleAt(size_t i) const {
    return IsIntPhysical(type_) ? static_cast<double>(ints_[i]) : doubles_[i];
  }
  int64_t IntAt(size_t i) const { return ints_[i]; }
  const std::string& StringAt(size_t i) const { return strings_[i]; }

  /// --- nulls ---
  bool has_nulls() const { return !valid_.empty(); }
  bool IsNull(size_t i) const { return !valid_.empty() && valid_[i] == 0; }
  bool IsValid(size_t i) const { return valid_.empty() || valid_[i] != 0; }
  /// Marks row i null (allocates the mask on first use).
  void SetNull(size_t i);
  const std::vector<uint8_t>& validity() const { return valid_; }
  void set_validity(std::vector<uint8_t> v) { valid_ = std::move(v); }
  /// Drops the mask if every row is valid.
  void CompactValidity();

  /// --- row-wise ---
  Value GetValue(size_t i) const;
  void AppendValue(const Value& v);
  void AppendNull();
  void AppendInt(int64_t x) { ints_.push_back(x); ExtendValidity(); }
  void AppendDouble(double x) { doubles_.push_back(x); ExtendValidity(); }
  void AppendString(std::string x) {
    strings_.push_back(std::move(x));
    ExtendValidity();
  }

  void Reserve(size_t n);
  void Clear();

  /// New column containing rows at `indices` (gather).
  Column Take(const std::vector<uint32_t>& indices) const;

  /// New column containing rows where mask[i] != 0.
  Column FilterBy(const std::vector<uint8_t>& mask) const;

  /// Appends all rows of `other` (must have same type).
  void AppendColumn(const Column& other);

  /// New column of rows [begin, end).
  Column Slice(size_t begin, size_t end) const;

  /// Three-way comparison of rows (this[i] vs other[j]); nulls sort first.
  int CompareRows(size_t i, const Column& other, size_t j) const;

  /// 64-bit hash of row i mixed into `seed` (used for join/group keys).
  uint64_t HashRow(size_t i, uint64_t seed) const;

  /// Column-at-a-time hashing: mixes row i's hash into hashes[i] for the
  /// first n rows (one type dispatch per column instead of per row).
  /// Produces exactly HashRow(i, hashes[i]) for every row.
  void HashInto(uint64_t* hashes, size_t n) const;

  /// Approximate heap footprint in bytes (peak-memory accounting, §8.2).
  size_t ByteSize() const;

 private:
  void ExtendValidity() {
    if (!valid_.empty()) valid_.push_back(1);
  }

  ValueType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<uint8_t> valid_;  // empty == all valid
};

}  // namespace wake

#endif  // WAKE_FRAME_COLUMN_H_
