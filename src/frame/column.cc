#include "frame/column.h"

#include <algorithm>

#include "common/error.h"

namespace wake {

namespace {
inline uint64_t MixHash(uint64_t h, uint64_t v) {
  // 64-bit mix derived from splitmix64's finalizer.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  // FNV-1a over bytes then mixed with the seed.
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return MixHash(seed, h);
}
}  // namespace

Column Column::FromInts(std::vector<int64_t> data, ValueType type) {
  Column c(type);
  c.ints_ = std::move(data);
  return c;
}

Column Column::FromDoubles(std::vector<double> data) {
  Column c(ValueType::kFloat64);
  c.doubles_ = std::move(data);
  return c;
}

Column Column::FromStrings(std::vector<std::string> data) {
  Column c(ValueType::kString);
  c.strings_ = std::move(data);
  return c;
}

size_t Column::size() const {
  switch (type_) {
    case ValueType::kFloat64:
      return doubles_.size();
    case ValueType::kString:
      return strings_.size();
    default:
      return ints_.size();
  }
}

void Column::SetNull(size_t i) {
  if (valid_.empty()) valid_.assign(size(), 1);
  valid_[i] = 0;
}

void Column::CompactValidity() {
  if (valid_.empty()) return;
  for (uint8_t v : valid_) {
    if (v == 0) return;
  }
  valid_.clear();
}

Value Column::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null(type_);
  Value v;
  v.type = type_;
  switch (type_) {
    case ValueType::kFloat64:
      v.d = doubles_[i];
      break;
    case ValueType::kString:
      v.s = strings_[i];
      break;
    default:
      v.i = ints_[i];
      break;
  }
  return v;
}

void Column::AppendValue(const Value& v) {
  if (v.is_null) {
    AppendNull();
    return;
  }
  switch (type_) {
    case ValueType::kFloat64:
      AppendDouble(v.type == ValueType::kFloat64 ? v.d
                                                 : static_cast<double>(v.i));
      break;
    case ValueType::kString:
      AppendString(v.s);
      break;
    default:
      AppendInt(v.type == ValueType::kFloat64 ? static_cast<int64_t>(v.d)
                                              : v.i);
      break;
  }
}

void Column::AppendNull() {
  if (valid_.empty()) valid_.assign(size(), 1);
  switch (type_) {
    case ValueType::kFloat64:
      doubles_.push_back(0.0);
      break;
    case ValueType::kString:
      strings_.emplace_back();
      break;
    default:
      ints_.push_back(0);
      break;
  }
  valid_.push_back(0);
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case ValueType::kFloat64:
      doubles_.reserve(n);
      break;
    case ValueType::kString:
      strings_.reserve(n);
      break;
    default:
      ints_.reserve(n);
      break;
  }
}

void Column::Clear() {
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  valid_.clear();
}

Column Column::Take(const std::vector<uint32_t>& indices) const {
  Column out(type_);
  const size_t n = indices.size();
  // Sized gathers (no per-push capacity checks in the hot join path).
  switch (type_) {
    case ValueType::kFloat64:
      out.doubles_.resize(n);
      for (size_t i = 0; i < n; ++i) out.doubles_[i] = doubles_[indices[i]];
      break;
    case ValueType::kString:
      out.strings_.resize(n);
      for (size_t i = 0; i < n; ++i) out.strings_[i] = strings_[indices[i]];
      break;
    default:
      out.ints_.resize(n);
      for (size_t i = 0; i < n; ++i) out.ints_[i] = ints_[indices[i]];
      break;
  }
  if (!valid_.empty()) {
    out.valid_.resize(n);
    for (size_t i = 0; i < n; ++i) out.valid_[i] = valid_[indices[i]];
    out.CompactValidity();
  }
  return out;
}

Column Column::FilterBy(const std::vector<uint8_t>& mask) const {
  CheckArg(mask.size() == size(), "filter mask length mismatch");
  Column out(type_);
  switch (type_) {
    case ValueType::kFloat64:
      for (size_t i = 0; i < mask.size(); ++i) {
        if (mask[i]) out.doubles_.push_back(doubles_[i]);
      }
      break;
    case ValueType::kString:
      for (size_t i = 0; i < mask.size(); ++i) {
        if (mask[i]) out.strings_.push_back(strings_[i]);
      }
      break;
    default:
      for (size_t i = 0; i < mask.size(); ++i) {
        if (mask[i]) out.ints_.push_back(ints_[i]);
      }
      break;
  }
  if (!valid_.empty()) {
    for (size_t i = 0; i < mask.size(); ++i) {
      if (mask[i]) out.valid_.push_back(valid_[i]);
    }
    out.CompactValidity();
  }
  return out;
}

void Column::AppendColumn(const Column& other) {
  CheckArg(type_ == other.type_, "append type mismatch");
  size_t old_size = size();
  // Decide before appending: an empty mask on an empty column must still
  // pick up the appended column's nulls.
  const bool need_mask = other.has_nulls() || !valid_.empty();
  switch (type_) {
    case ValueType::kFloat64:
      doubles_.insert(doubles_.end(), other.doubles_.begin(),
                      other.doubles_.end());
      break;
    case ValueType::kString:
      strings_.insert(strings_.end(), other.strings_.begin(),
                      other.strings_.end());
      break;
    default:
      ints_.insert(ints_.end(), other.ints_.begin(), other.ints_.end());
      break;
  }
  if (need_mask) {
    if (valid_.empty()) valid_.assign(old_size, 1);
    if (other.valid_.empty()) {
      valid_.resize(size(), 1);
    } else {
      valid_.insert(valid_.end(), other.valid_.begin(), other.valid_.end());
    }
  }
}

Column Column::Slice(size_t begin, size_t end) const {
  Column out(type_);
  switch (type_) {
    case ValueType::kFloat64:
      out.doubles_.assign(doubles_.begin() + begin, doubles_.begin() + end);
      break;
    case ValueType::kString:
      out.strings_.assign(strings_.begin() + begin, strings_.begin() + end);
      break;
    default:
      out.ints_.assign(ints_.begin() + begin, ints_.begin() + end);
      break;
  }
  if (!valid_.empty()) {
    out.valid_.assign(valid_.begin() + begin, valid_.begin() + end);
    out.CompactValidity();
  }
  return out;
}

int Column::CompareRows(size_t i, const Column& other, size_t j) const {
  bool ln = IsNull(i), rn = other.IsNull(j);
  if (ln || rn) return ln == rn ? 0 : (ln ? -1 : 1);
  if (type_ == ValueType::kString) {
    int c = strings_[i].compare(other.strings_[j]);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Numeric comparison with int/float promotion (mixed-type comparisons
  // arise when filters compare integer columns against derived floats).
  if (type_ == ValueType::kFloat64 || other.type_ == ValueType::kFloat64) {
    double a = DoubleAt(i), b = other.DoubleAt(j);
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  int64_t a = ints_[i], b = other.ints_[j];
  return a < b ? -1 : (a > b ? 1 : 0);
}

uint64_t Column::HashRow(size_t i, uint64_t seed) const {
  if (IsNull(i)) return MixHash(seed, 0xdeadbeefULL);
  switch (type_) {
    case ValueType::kString:
      return HashBytes(strings_[i].data(), strings_[i].size(), seed);
    case ValueType::kFloat64: {
      double d = doubles_[i];
      if (d == 0.0) d = 0.0;  // normalize -0.0
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return MixHash(seed, bits);
    }
    default:
      return MixHash(seed, static_cast<uint64_t>(ints_[i]));
  }
}

void Column::HashInto(uint64_t* hashes, size_t n) const {
  const bool nulls = !valid_.empty();
  switch (type_) {
    case ValueType::kString:
      for (size_t i = 0; i < n; ++i) {
        hashes[i] = (nulls && valid_[i] == 0)
                        ? MixHash(hashes[i], 0xdeadbeefULL)
                        : HashBytes(strings_[i].data(), strings_[i].size(),
                                    hashes[i]);
      }
      break;
    case ValueType::kFloat64:
      for (size_t i = 0; i < n; ++i) {
        if (nulls && valid_[i] == 0) {
          hashes[i] = MixHash(hashes[i], 0xdeadbeefULL);
          continue;
        }
        double d = doubles_[i];
        if (d == 0.0) d = 0.0;  // normalize -0.0
        uint64_t bits;
        __builtin_memcpy(&bits, &d, sizeof(bits));
        hashes[i] = MixHash(hashes[i], bits);
      }
      break;
    default:
      for (size_t i = 0; i < n; ++i) {
        hashes[i] = (nulls && valid_[i] == 0)
                        ? MixHash(hashes[i], 0xdeadbeefULL)
                        : MixHash(hashes[i], static_cast<uint64_t>(ints_[i]));
      }
      break;
  }
}

size_t Column::ByteSize() const {
  size_t bytes = ints_.capacity() * sizeof(int64_t) +
                 doubles_.capacity() * sizeof(double) + valid_.capacity();
  // Short strings live in the SSO buffer inside sizeof(std::string);
  // only capacities beyond it allocate separately on the heap.
  static const size_t kInlineCapacity = std::string().capacity();
  bytes += strings_.capacity() * sizeof(std::string);
  for (const auto& s : strings_) {
    if (s.capacity() > kInlineCapacity) bytes += s.capacity();
  }
  return bytes;
}

}  // namespace wake
