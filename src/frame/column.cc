#include "frame/column.h"

#include <algorithm>

#include "common/error.h"
#include "common/hash.h"

namespace wake {

namespace {
// Sentinel mixed in place of a value hash for null rows.
constexpr uint64_t kNullHashPayload = 0xdeadbeefULL;
}  // namespace

const std::string Column::kEmptyString;

Column Column::FromInts(std::vector<int64_t> data, ValueType type) {
  Column c(type);
  c.ints_ = std::move(data);
  return c;
}

Column Column::FromDoubles(std::vector<double> data) {
  Column c(ValueType::kFloat64);
  c.doubles_ = std::move(data);
  return c;
}

Column Column::FromStrings(std::vector<std::string> data) {
  Column c(ValueType::kString);
  c.strings_ = std::move(data);
  return c;
}

Column Column::NewDict() {
  Column c(ValueType::kString);
  c.dict_ = std::make_shared<StringDict>();
  return c;
}

Column Column::DictFromStrings(const std::vector<std::string>& data) {
  Column c = NewDict();
  c.codes_.reserve(data.size());
  for (const auto& s : data) c.codes_.push_back(c.dict_->Intern(s));
  return c;
}

Column Column::DictFromCodes(StringDictPtr dict, std::vector<int32_t> codes,
                             ValidityBitmap valid) {
  Column c(ValueType::kString);
  c.dict_ = std::move(dict);
  c.codes_ = std::move(codes);
  c.valid_ = std::move(valid);
  c.CompactValidity();
  return c;
}

Column Column::DecodeDict() const {
  if (dict_ == nullptr) return *this;
  Column out(ValueType::kString);
  out.strings_.reserve(codes_.size());
  for (size_t i = 0; i < codes_.size(); ++i) {
    out.strings_.push_back(codes_[i] < 0 ? std::string()
                                         : dict_->At(codes_[i]));
  }
  out.valid_ = valid_;
  return out;
}

Column Column::EncodeDict() const {
  CheckArg(type_ == ValueType::kString, "EncodeDict over non-string");
  if (dict_ != nullptr) return *this;
  Column out = NewDict();
  out.codes_.reserve(strings_.size());
  for (size_t i = 0; i < strings_.size(); ++i) {
    out.codes_.push_back(IsNull(i) ? kNullCode : out.dict_->Intern(strings_[i]));
  }
  out.valid_ = valid_;
  return out;
}

StringDict* Column::MutableDict() {
  if (dict_.use_count() > 1) dict_ = std::make_shared<StringDict>(*dict_);
  return dict_.get();
}

size_t Column::size() const {
  switch (type_) {
    case ValueType::kFloat64:
      return doubles_.size();
    case ValueType::kString:
      return dict_ != nullptr ? codes_.size() : strings_.size();
    default:
      return ints_.size();
  }
}

void Column::SetNull(size_t i) {
  if (valid_.empty()) valid_.AssignAllValid(size());
  valid_.SetNull(i);
  if (dict_ != nullptr) codes_[i] = kNullCode;
}

void Column::CompactValidity() {
  // Padding bits are 1, so all-valid is a plain all-words == ~0 scan.
  if (!valid_.empty() && valid_.AllValid()) valid_.Clear();
}

Value Column::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null(type_);
  Value v;
  v.type = type_;
  switch (type_) {
    case ValueType::kFloat64:
      v.d = doubles_[i];
      break;
    case ValueType::kString:
      v.s = StringAt(i);
      break;
    default:
      v.i = ints_[i];
      break;
  }
  return v;
}

void Column::AppendValue(const Value& v) {
  if (v.is_null) {
    AppendNull();
    return;
  }
  switch (type_) {
    case ValueType::kFloat64:
      AppendDouble(v.type == ValueType::kFloat64 ? v.d
                                                 : static_cast<double>(v.i));
      break;
    case ValueType::kString:
      AppendString(v.s);
      break;
    default:
      AppendInt(v.type == ValueType::kFloat64 ? static_cast<int64_t>(v.d)
                                              : v.i);
      break;
  }
}

void Column::AppendString(std::string x) {
  if (dict_ != nullptr) {
    codes_.push_back(MutableDict()->Intern(x));
  } else {
    strings_.push_back(std::move(x));
  }
  ExtendValidity();
}

void Column::AppendFrom(const Column& src, size_t i) {
  if (src.IsNull(i)) {
    AppendNull();
    return;
  }
  if (type_ == ValueType::kString) {
    if (src.dict_ != nullptr) {
      if (dict_ == nullptr && size() == 0) dict_ = src.dict_;
      if (dict_ == src.dict_) {
        codes_.push_back(src.codes_[i]);
        ExtendValidity();
        return;
      }
    }
    AppendString(src.StringAt(i));
    return;
  }
  AppendValue(src.GetValue(i));
}

void Column::AppendNull() {
  if (valid_.empty()) valid_.AssignAllValid(size());
  switch (type_) {
    case ValueType::kFloat64:
      doubles_.push_back(0.0);
      break;
    case ValueType::kString:
      if (dict_ != nullptr) {
        codes_.push_back(kNullCode);
      } else {
        strings_.emplace_back();
      }
      break;
    default:
      ints_.push_back(0);
      break;
  }
  valid_.Append(false);
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case ValueType::kFloat64:
      doubles_.reserve(n);
      break;
    case ValueType::kString:
      if (dict_ != nullptr) {
        codes_.reserve(n);
      } else {
        strings_.reserve(n);
      }
      break;
    default:
      ints_.reserve(n);
      break;
  }
}

void Column::Clear() {
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  codes_.clear();
  valid_.Clear();
}

Column Column::Take(const std::vector<uint32_t>& indices) const {
  Column out(type_);
  const size_t n = indices.size();
  // Sized gathers (no per-push capacity checks in the hot join path).
  switch (type_) {
    case ValueType::kFloat64:
      out.doubles_.resize(n);
      for (size_t i = 0; i < n; ++i) out.doubles_[i] = doubles_[indices[i]];
      break;
    case ValueType::kString:
      if (dict_ != nullptr) {
        // Codes gather; the dict is shared, so no string is copied.
        out.dict_ = dict_;
        out.codes_.resize(n);
        for (size_t i = 0; i < n; ++i) out.codes_[i] = codes_[indices[i]];
      } else {
        out.strings_.resize(n);
        for (size_t i = 0; i < n; ++i) out.strings_[i] = strings_[indices[i]];
      }
      break;
    default:
      out.ints_.resize(n);
      for (size_t i = 0; i < n; ++i) out.ints_[i] = ints_[indices[i]];
      break;
  }
  if (!valid_.empty()) {
    // Bitmap gather: start all-valid, clear bits for gathered nulls
    // (write-only per 64-row word, so morsel-parallel callers writing
    // disjoint 64-aligned row ranges never share a word).
    out.valid_.AssignAllValid(n);
    uint64_t* ow = out.valid_.mutable_words();
    for (size_t i = 0; i < n; ++i) {
      if (!valid_.Get(indices[i])) ow[i >> 6] &= ~(1ULL << (i & 63));
    }
    out.CompactValidity();
  }
  return out;
}

Column Column::FilterBy(const std::vector<uint8_t>& mask) const {
  CheckArg(mask.size() == size(), "filter mask length mismatch");
  Column out(type_);
  switch (type_) {
    case ValueType::kFloat64:
      for (size_t i = 0; i < mask.size(); ++i) {
        if (mask[i]) out.doubles_.push_back(doubles_[i]);
      }
      break;
    case ValueType::kString:
      if (dict_ != nullptr) {
        out.dict_ = dict_;
        for (size_t i = 0; i < mask.size(); ++i) {
          if (mask[i]) out.codes_.push_back(codes_[i]);
        }
      } else {
        for (size_t i = 0; i < mask.size(); ++i) {
          if (mask[i]) out.strings_.push_back(strings_[i]);
        }
      }
      break;
    default:
      for (size_t i = 0; i < mask.size(); ++i) {
        if (mask[i]) out.ints_.push_back(ints_[i]);
      }
      break;
  }
  if (!valid_.empty()) {
    for (size_t i = 0; i < mask.size(); ++i) {
      if (mask[i]) out.valid_.Append(valid_.Get(i));
    }
    out.CompactValidity();
  }
  return out;
}

void Column::AppendColumn(const Column& other) {
  CheckArg(type_ == other.type_, "append type mismatch");
  size_t old_size = size();
  // Decide before appending: an empty mask on an empty column must still
  // pick up the appended column's nulls.
  const bool need_mask = other.has_nulls() || !valid_.empty();
  switch (type_) {
    case ValueType::kFloat64:
      doubles_.insert(doubles_.end(), other.doubles_.begin(),
                      other.doubles_.end());
      break;
    case ValueType::kString: {
      if (old_size == 0 && dict_ == nullptr && other.dict_ != nullptr) {
        dict_ = other.dict_;  // empty destination adopts the encoding
      }
      if (dict_ == nullptr && other.dict_ == nullptr) {
        strings_.insert(strings_.end(), other.strings_.begin(),
                        other.strings_.end());
      } else if (dict_ != nullptr && dict_ == other.dict_) {
        codes_.insert(codes_.end(), other.codes_.begin(), other.codes_.end());
      } else if (dict_ != nullptr && other.dict_ != nullptr) {
        // Cross-dict append: remap each distinct entry once, then gather.
        StringDict* d = MutableDict();
        std::vector<int32_t> remap(other.dict_->size());
        for (size_t c = 0; c < remap.size(); ++c) {
          remap[c] = d->Intern(other.dict_->At(static_cast<int32_t>(c)));
        }
        codes_.reserve(codes_.size() + other.codes_.size());
        for (int32_t code : other.codes_) {
          codes_.push_back(code < 0 ? kNullCode : remap[code]);
        }
      } else if (dict_ != nullptr) {
        // Plain rows into a dict column: intern row by row.
        StringDict* d = MutableDict();
        codes_.reserve(codes_.size() + other.strings_.size());
        for (size_t i = 0; i < other.strings_.size(); ++i) {
          codes_.push_back(other.IsNull(i) ? kNullCode
                                           : d->Intern(other.strings_[i]));
        }
      } else {
        // Dict rows into a non-empty plain column: decode.
        strings_.reserve(strings_.size() + other.codes_.size());
        for (size_t i = 0; i < other.codes_.size(); ++i) {
          strings_.push_back(other.codes_[i] < 0
                                 ? std::string()
                                 : other.dict_->At(other.codes_[i]));
        }
      }
      break;
    }
    default:
      ints_.insert(ints_.end(), other.ints_.begin(), other.ints_.end());
      break;
  }
  if (need_mask) {
    if (valid_.empty()) valid_.AssignAllValid(old_size);
    if (other.valid_.empty()) {
      valid_.AppendAllValid(other.size());
    } else {
      valid_.AppendBitmap(other.valid_);
    }
  }
}

Column Column::Slice(size_t begin, size_t end) const {
  Column out(type_);
  switch (type_) {
    case ValueType::kFloat64:
      out.doubles_.assign(doubles_.begin() + begin, doubles_.begin() + end);
      break;
    case ValueType::kString:
      if (dict_ != nullptr) {
        out.dict_ = dict_;
        out.codes_.assign(codes_.begin() + begin, codes_.begin() + end);
      } else {
        out.strings_.assign(strings_.begin() + begin, strings_.begin() + end);
      }
      break;
    default:
      out.ints_.assign(ints_.begin() + begin, ints_.begin() + end);
      break;
  }
  if (!valid_.empty()) {
    out.valid_ = valid_.Slice(begin, end);
    out.CompactValidity();
  }
  return out;
}

int Column::CompareRows(size_t i, const Column& other, size_t j) const {
  bool ln = IsNull(i), rn = other.IsNull(j);
  if (ln || rn) return ln == rn ? 0 : (ln ? -1 : 1);
  if (type_ == ValueType::kString) {
    // Shared-dict equality is a code compare; codes are unordered (the
    // dict is insertion-ordered), so inequality still compares bytes.
    if (dict_ != nullptr && dict_ == other.dict_ &&
        codes_[i] == other.codes_[j]) {
      return 0;
    }
    int c = StringAt(i).compare(other.StringAt(j));
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  // Numeric comparison with int/float promotion (mixed-type comparisons
  // arise when filters compare integer columns against derived floats).
  if (type_ == ValueType::kFloat64 || other.type_ == ValueType::kFloat64) {
    double a = DoubleAt(i), b = other.DoubleAt(j);
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  int64_t a = ints_[i], b = other.ints_[j];
  return a < b ? -1 : (a > b ? 1 : 0);
}

uint64_t Column::HashRow(size_t i, uint64_t seed) const {
  if (IsNull(i)) return MixHash(seed, kNullHashPayload);
  switch (type_) {
    case ValueType::kString:
      if (dict_ != nullptr) return MixHash(seed, dict_->HashAt(codes_[i]));
      return HashBytes(strings_[i].data(), strings_[i].size(), seed);
    case ValueType::kFloat64: {
      double d = doubles_[i];
      if (d == 0.0) d = 0.0;  // normalize -0.0
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return MixHash(seed, bits);
    }
    default:
      return MixHash(seed, static_cast<uint64_t>(ints_[i]));
  }
}

namespace {
// Drives `hash_one(i, h)` over [begin, end) under a validity bitmap,
// one 64-row word at a time: all-ones words run the branch-free inner
// loop (the overwhelmingly common case), only mixed words fall back to
// a per-bit test. `hash_one` is never called for a null row, so dict
// hashers can index pre-hash tables without a kNullCode guard.
template <typename HashOne>
inline void HashWordWise(const ValidityBitmap& valid, uint64_t* hashes,
                         size_t begin, size_t end, HashOne&& hash_one) {
  const uint64_t* vw = valid.words();
  size_t i = begin;
  while (i < end) {
    const size_t w = i >> 6;
    const size_t word_end = std::min(end, (w + 1) * 64);
    const uint64_t word = vw[w];
    if (word == ~0ULL) {
      for (; i < word_end; ++i) {
        hashes[i - begin] = hash_one(i, hashes[i - begin]);
      }
    } else {
      for (; i < word_end; ++i) {
        uint64_t h = hashes[i - begin];
        hashes[i - begin] = ((word >> (i & 63)) & 1)
                                ? hash_one(i, h)
                                : MixHash(h, kNullHashPayload);
      }
    }
  }
}
}  // namespace

void Column::HashIntoRange(uint64_t* hashes, size_t begin, size_t end) const {
  switch (type_) {
    case ValueType::kString:
      if (dict_ != nullptr) {
        // One pre-hash load + mix per row; no byte loop.
        const int32_t* cp = codes_.data();
        const uint64_t* ph = dict_->hash_data();
        if (valid_.empty()) {
          for (size_t i = begin; i < end; ++i) {
            hashes[i - begin] = MixHash(hashes[i - begin], ph[cp[i]]);
          }
        } else {
          HashWordWise(valid_, hashes, begin, end, [&](size_t i, uint64_t h) {
            return MixHash(h, ph[cp[i]]);
          });
        }
        break;
      }
      if (valid_.empty()) {
        for (size_t i = begin; i < end; ++i) {
          hashes[i - begin] = HashBytes(strings_[i].data(), strings_[i].size(),
                                        hashes[i - begin]);
        }
      } else {
        HashWordWise(valid_, hashes, begin, end, [&](size_t i, uint64_t h) {
          return HashBytes(strings_[i].data(), strings_[i].size(), h);
        });
      }
      break;
    case ValueType::kFloat64: {
      const auto hash_double = [&](size_t i, uint64_t h) {
        double d = doubles_[i];
        if (d == 0.0) d = 0.0;  // normalize -0.0
        uint64_t bits;
        __builtin_memcpy(&bits, &d, sizeof(bits));
        return MixHash(h, bits);
      };
      if (valid_.empty()) {
        for (size_t i = begin; i < end; ++i) {
          hashes[i - begin] = hash_double(i, hashes[i - begin]);
        }
      } else {
        HashWordWise(valid_, hashes, begin, end, hash_double);
      }
      break;
    }
    default:
      if (valid_.empty()) {
        for (size_t i = begin; i < end; ++i) {
          hashes[i - begin] =
              MixHash(hashes[i - begin], static_cast<uint64_t>(ints_[i]));
        }
      } else {
        HashWordWise(valid_, hashes, begin, end, [&](size_t i, uint64_t h) {
          return MixHash(h, static_cast<uint64_t>(ints_[i]));
        });
      }
      break;
  }
}

std::vector<uint32_t> Column::SelectionFrom(const Column& pred) {
  CheckArg(IsIntPhysical(pred.type_), "selection from non-bool predicate");
  const size_t n = pred.size();
  const int64_t* v = pred.ints_.data();
  const size_t nwords = ValidityBitmap::WordsFor(n);
  // Truth words: bit i set when row i is valid AND non-zero. Values are
  // packed first (autovectorizable compare loop), then the validity
  // bitmap ANDs in one op per 64 rows.
  std::vector<uint64_t> truth(nwords, 0);
  for (size_t i = 0; i < n; ++i) {
    truth[i >> 6] |= static_cast<uint64_t>(v[i] != 0) << (i & 63);
  }
  if (!pred.valid_.empty()) {
    const uint64_t* mw = pred.valid_.words();
    for (size_t w = 0; w < nwords; ++w) truth[w] &= mw[w];
  }
  size_t count = 0;
  for (uint64_t w : truth) count += static_cast<size_t>(PopCount64(w));
  // Popcount-sized output, ctz iteration: one branchless emit per
  // selected row, skipping empty words entirely.
  std::vector<uint32_t> sel(count);
  size_t out = 0;
  for (size_t w = 0; w < nwords; ++w) {
    uint64_t word = truth[w];
    const uint32_t base = static_cast<uint32_t>(w << 6);
    while (word != 0) {
      sel[out++] = base + static_cast<uint32_t>(CountTrailingZeros64(word));
      word &= word - 1;
    }
  }
  return sel;
}

size_t Column::ByteSize() const {
  size_t bytes = ints_.capacity() * sizeof(int64_t) +
                 doubles_.capacity() * sizeof(double) +
                 codes_.capacity() * sizeof(int32_t) + valid_.CapacityBytes();
  if (dict_ != nullptr) bytes += dict_->ByteSize();
  // Short strings live in the SSO buffer inside sizeof(std::string);
  // only capacities beyond it allocate separately on the heap. Dict
  // columns hold no per-row strings — payload bytes live in the pool,
  // counted once via dict_->ByteSize() above.
  static const size_t kInlineCapacity = std::string().capacity();
  bytes += strings_.capacity() * sizeof(std::string);
  for (const auto& s : strings_) {
    if (s.capacity() > kInlineCapacity) bytes += s.capacity();
  }
  return bytes;
}

}  // namespace wake
