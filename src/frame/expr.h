// Expression trees with vectorized evaluation over DataFrames.
//
// Expressions power map projections and filter predicates in every engine
// (Wake, the exact baseline, and the OLA baselines all interpret the same
// trees). Evaluation is column-at-a-time. A second evaluation mode
// propagates per-row variances via first-order Taylor expansion ("propagation
// of uncertainty", §6 of the paper), which the CI machinery uses for map
// expressions over mutable attributes.
//
// Null semantics: arithmetic/comparison propagate null; logical AND/OR treat
// null as false (sufficient for TPC-H, where nulls arise only from left
// joins and are consumed via Coalesce / count).
#ifndef WAKE_FRAME_EXPR_H_
#define WAKE_FRAME_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "frame/data_frame.h"

namespace wake {

enum class ExprKind : uint8_t {
  kColumn,
  kLiteral,
  kArith,
  kCompare,
  kLogic,
  kNot,
  kLike,
  kInList,
  kCase,      // CASE WHEN cond THEN a ELSE b END
  kCoalesce,  // first non-null of (child, fallback literal)
  kSubstr,
  kYear,    // EXTRACT(YEAR FROM date)
  kIsNull,  // IS NULL test (IS NOT NULL composes with kNot)
};

enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };
enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicOp : uint8_t { kAnd, kOr };

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression node.
class Expr {
 public:
  /// --- factories ---
  static ExprPtr Col(std::string name);
  static ExprPtr Lit(Value v);
  static ExprPtr Int(int64_t x) { return Lit(Value::Int(x)); }
  static ExprPtr Float(double x) { return Lit(Value::Float(x)); }
  static ExprPtr Str(std::string s) { return Lit(Value::Str(std::move(s))); }
  static ExprPtr Date(int y, int m, int d) {
    return Lit(Value::Date(DateToDays(y, m, d)));
  }
  static ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r);
  static ExprPtr And(ExprPtr l, ExprPtr r);
  static ExprPtr Or(ExprPtr l, ExprPtr r);
  static ExprPtr Not(ExprPtr c);
  static ExprPtr Like(ExprPtr input, std::string pattern);
  static ExprPtr In(ExprPtr input, std::vector<Value> values);
  static ExprPtr Case(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr);
  static ExprPtr Coalesce(ExprPtr input, Value fallback);
  static ExprPtr Substr(ExprPtr input, int64_t start, int64_t len);
  static ExprPtr Year(ExprPtr input);
  static ExprPtr IsNull(ExprPtr input);

  ExprKind kind() const { return kind_; }
  const std::string& column_name() const { return name_; }
  const Value& literal() const { return literal_; }

  /// --- structural accessors (used by the plan optimizer to rewrite
  /// trees: constant folding, conjunction splitting, column renaming) ---
  const std::vector<ExprPtr>& children() const { return children_; }
  ArithOp arith_op() const { return arith_op_; }
  CompareOp cmp_op() const { return cmp_op_; }
  LogicOp logic_op() const { return logic_op_; }
  const std::string& like_pattern() const { return pattern_; }
  const std::vector<Value>& in_list() const { return list_; }
  int64_t substr_start() const { return substr_start_; }
  int64_t substr_len() const { return substr_len_; }

  /// Result type when evaluated against `schema`.
  ValueType ResultType(const Schema& schema) const;

  /// Vectorized evaluation; returns a column of df.num_rows() values.
  Column Eval(const DataFrame& df) const;

  /// Evaluation with first-order variance propagation. `var_of` maps column
  /// names to per-row variance vectors (columns absent from the map are
  /// treated as exact). Produces the value column and per-row variances of
  /// the result. Non-differentiable nodes (comparisons, LIKE, ...) yield
  /// zero variance.
  void EvalWithVariance(
      const DataFrame& df,
      const std::unordered_map<std::string, const std::vector<double>*>&
          var_of,
      Column* out_value, std::vector<double>* out_var) const;

  /// Names of all columns this expression reads.
  void CollectColumns(std::set<std::string>* out) const;

  /// True if the expression reads any attribute marked mutable in `schema`
  /// (decides Case 1 vs Case 3 treatment of filters, §2.3).
  bool ReadsMutable(const Schema& schema) const;

  std::string ToString() const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  std::string name_;        // kColumn
  Value literal_;           // kLiteral / kCoalesce fallback
  ArithOp arith_op_ = ArithOp::kAdd;
  CompareOp cmp_op_ = CompareOp::kEq;
  LogicOp logic_op_ = LogicOp::kAnd;
  std::string pattern_;     // kLike
  std::vector<Value> list_;  // kInList
  int64_t substr_start_ = 0, substr_len_ = 0;
  std::vector<ExprPtr> children_;
};

/// Ergonomic operators for the query builders.
inline ExprPtr operator+(ExprPtr l, ExprPtr r) {
  return Expr::Arith(ArithOp::kAdd, std::move(l), std::move(r));
}
inline ExprPtr operator-(ExprPtr l, ExprPtr r) {
  return Expr::Arith(ArithOp::kSub, std::move(l), std::move(r));
}
inline ExprPtr operator*(ExprPtr l, ExprPtr r) {
  return Expr::Arith(ArithOp::kMul, std::move(l), std::move(r));
}
inline ExprPtr operator/(ExprPtr l, ExprPtr r) {
  return Expr::Arith(ArithOp::kDiv, std::move(l), std::move(r));
}

inline ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return Expr::Cmp(CompareOp::kEq, std::move(l), std::move(r));
}
inline ExprPtr Ne(ExprPtr l, ExprPtr r) {
  return Expr::Cmp(CompareOp::kNe, std::move(l), std::move(r));
}
inline ExprPtr Lt(ExprPtr l, ExprPtr r) {
  return Expr::Cmp(CompareOp::kLt, std::move(l), std::move(r));
}
inline ExprPtr Le(ExprPtr l, ExprPtr r) {
  return Expr::Cmp(CompareOp::kLe, std::move(l), std::move(r));
}
inline ExprPtr Gt(ExprPtr l, ExprPtr r) {
  return Expr::Cmp(CompareOp::kGt, std::move(l), std::move(r));
}
inline ExprPtr Ge(ExprPtr l, ExprPtr r) {
  return Expr::Cmp(CompareOp::kGe, std::move(l), std::move(r));
}

}  // namespace wake

#endif  // WAKE_FRAME_EXPR_H_
