#include "frame/expr.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/strings.h"

namespace wake {

// The factories construct nodes directly; Expr's private constructor is
// reachable because the factories are static members.

ExprPtr Expr::Col(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumn;
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Lit(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kArith;
  e->arith_op_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kCompare;
  e->cmp_op_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::And(ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLogic;
  e->logic_op_ = LogicOp::kAnd;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Or(ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLogic;
  e->logic_op_ = LogicOp::kOr;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Not(ExprPtr c) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kNot;
  e->children_ = {std::move(c)};
  return e;
}

ExprPtr Expr::Like(ExprPtr input, std::string pattern) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLike;
  e->pattern_ = std::move(pattern);
  e->children_ = {std::move(input)};
  return e;
}

ExprPtr Expr::In(ExprPtr input, std::vector<Value> values) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kInList;
  e->list_ = std::move(values);
  e->children_ = {std::move(input)};
  return e;
}

ExprPtr Expr::Case(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kCase;
  e->children_ = {std::move(cond), std::move(then_expr), std::move(else_expr)};
  return e;
}

ExprPtr Expr::Coalesce(ExprPtr input, Value fallback) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kCoalesce;
  e->literal_ = std::move(fallback);
  e->children_ = {std::move(input)};
  return e;
}

ExprPtr Expr::Substr(ExprPtr input, int64_t start, int64_t len) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kSubstr;
  e->substr_start_ = start;
  e->substr_len_ = len;
  e->children_ = {std::move(input)};
  return e;
}

ExprPtr Expr::Year(ExprPtr input) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kYear;
  e->children_ = {std::move(input)};
  return e;
}

ExprPtr Expr::IsNull(ExprPtr input) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kIsNull;
  e->children_ = {std::move(input)};
  return e;
}

ValueType Expr::ResultType(const Schema& schema) const {
  switch (kind_) {
    case ExprKind::kColumn:
      return schema.field(schema.FieldIndex(name_)).type;
    case ExprKind::kLiteral:
      return literal_.type;
    case ExprKind::kArith: {
      if (arith_op_ == ArithOp::kDiv) return ValueType::kFloat64;
      ValueType l = children_[0]->ResultType(schema);
      ValueType r = children_[1]->ResultType(schema);
      if (l == ValueType::kFloat64 || r == ValueType::kFloat64) {
        return ValueType::kFloat64;
      }
      return ValueType::kInt64;
    }
    case ExprKind::kCompare:
    case ExprKind::kLogic:
    case ExprKind::kNot:
    case ExprKind::kLike:
    case ExprKind::kInList:
      // Recurse for validation (unknown column references must throw even
      // though the result type is fixed).
      for (const auto& c : children_) c->ResultType(schema);
      return ValueType::kBool;
    case ExprKind::kCase: {
      ValueType t = children_[1]->ResultType(schema);
      ValueType f = children_[2]->ResultType(schema);
      if (t == ValueType::kFloat64 || f == ValueType::kFloat64) {
        return ValueType::kFloat64;
      }
      return t;
    }
    case ExprKind::kCoalesce:
      return children_[0]->ResultType(schema);
    case ExprKind::kSubstr:
      return ValueType::kString;
    case ExprKind::kYear:
      return ValueType::kInt64;
    case ExprKind::kIsNull:
      children_[0]->ResultType(schema);  // validate
      return ValueType::kBool;
  }
  return ValueType::kInt64;
}

namespace {

// Numeric binary arithmetic over two evaluated columns.
Column EvalArith(ArithOp op, const Column& l, const Column& r) {
  size_t n = l.size();
  bool to_double = op == ArithOp::kDiv || l.type() == ValueType::kFloat64 ||
                   r.type() == ValueType::kFloat64;
  Column out(to_double ? ValueType::kFloat64 : ValueType::kInt64);
  if (to_double) {
    auto& v = *out.mutable_doubles();
    v.resize(n);
    for (size_t i = 0; i < n; ++i) {
      double a = l.DoubleAt(i), b = r.DoubleAt(i);
      switch (op) {
        case ArithOp::kAdd: v[i] = a + b; break;
        case ArithOp::kSub: v[i] = a - b; break;
        case ArithOp::kMul: v[i] = a * b; break;
        case ArithOp::kDiv: v[i] = b == 0.0 ? 0.0 : a / b; break;
      }
    }
  } else {
    auto& v = *out.mutable_ints();
    v.resize(n);
    const auto& a = l.ints();
    const auto& b = r.ints();
    for (size_t i = 0; i < n; ++i) {
      switch (op) {
        case ArithOp::kAdd: v[i] = a[i] + b[i]; break;
        case ArithOp::kSub: v[i] = a[i] - b[i]; break;
        case ArithOp::kMul: v[i] = a[i] * b[i]; break;
        case ArithOp::kDiv: break;  // unreachable: kDiv promotes
      }
    }
  }
  // Word-at-a-time null propagation: result validity is the AND of the
  // operand bitmaps — 64 rows per op, no per-row branches.
  if (l.has_nulls() && r.has_nulls()) {
    ValidityBitmap valid = l.validity();
    uint64_t* w = valid.mutable_words();
    const uint64_t* rw = r.validity().words();
    for (size_t k = 0; k < valid.num_words(); ++k) w[k] &= rw[k];
    out.set_validity(std::move(valid));
    out.CompactValidity();
  } else if (l.has_nulls() || r.has_nulls()) {
    out.set_validity(l.has_nulls() ? l.validity() : r.validity());
    out.CompactValidity();
  }
  return out;
}

template <typename T, typename U>
void CompareLoop(CompareOp op, const std::vector<T>& a,
                 const std::vector<U>& b, std::vector<int64_t>* out) {
  size_t n = a.size();
  switch (op) {
    case CompareOp::kEq:
      for (size_t i = 0; i < n; ++i) (*out)[i] = a[i] == b[i];
      break;
    case CompareOp::kNe:
      for (size_t i = 0; i < n; ++i) (*out)[i] = a[i] != b[i];
      break;
    case CompareOp::kLt:
      for (size_t i = 0; i < n; ++i) (*out)[i] = a[i] < b[i];
      break;
    case CompareOp::kLe:
      for (size_t i = 0; i < n; ++i) (*out)[i] = a[i] <= b[i];
      break;
    case CompareOp::kGt:
      for (size_t i = 0; i < n; ++i) (*out)[i] = a[i] > b[i];
      break;
    case CompareOp::kGe:
      for (size_t i = 0; i < n; ++i) (*out)[i] = a[i] >= b[i];
      break;
  }
}

Column EvalCompare(CompareOp op, const Column& l, const Column& r) {
  size_t n = l.size();
  Column out(ValueType::kBool);
  auto& v = *out.mutable_ints();
  v.resize(n, 0);
  // Numeric columns compare in tight typed loops over every row — null
  // slots hold defined 0/0.0 values, so computing them is safe — then
  // null rows are zeroed word-wise (null compare -> false). All-valid
  // words skip their 64 rows in one test.
  if (l.type() != ValueType::kString && r.type() != ValueType::kString) {
    bool li = IsIntPhysical(l.type()), ri = IsIntPhysical(r.type());
    if (li && ri) {
      CompareLoop(op, l.ints(), r.ints(), &v);
    } else if (!li && !ri) {
      CompareLoop(op, l.doubles(), r.doubles(), &v);
    } else if (li) {
      CompareLoop(op, l.ints(), r.doubles(), &v);
    } else {
      CompareLoop(op, l.doubles(), r.ints(), &v);
    }
    if (l.has_nulls() || r.has_nulls()) {
      const uint64_t* lw = l.has_nulls() ? l.validity().words() : nullptr;
      const uint64_t* rw = r.has_nulls() ? r.validity().words() : nullptr;
      const size_t nwords = ValidityBitmap::WordsFor(n);
      for (size_t w = 0; w < nwords; ++w) {
        uint64_t word = ~0ULL;
        if (lw != nullptr) word &= lw[w];
        if (rw != nullptr) word &= rw[w];
        if (word == ~0ULL) continue;
        const size_t base = w << 6;
        const size_t lim = std::min(n, base + 64);
        for (size_t i = base; i < lim; ++i) {
          if (((word >> (i & 63)) & 1) == 0) v[i] = 0;
        }
      }
    }
    return out;
  }
  for (size_t i = 0; i < n; ++i) {
    if (l.IsNull(i) || r.IsNull(i)) continue;  // null compare -> false
    int c = l.CompareRows(i, r, i);
    bool b = false;
    switch (op) {
      case CompareOp::kEq: b = c == 0; break;
      case CompareOp::kNe: b = c != 0; break;
      case CompareOp::kLt: b = c < 0; break;
      case CompareOp::kLe: b = c <= 0; break;
      case CompareOp::kGt: b = c > 0; break;
      case CompareOp::kGe: b = c >= 0; break;
    }
    v[i] = b ? 1 : 0;
  }
  return out;
}

// Packs "valid && non-zero" per row of a bool column into 64-row truth
// words: one autovectorizable packing pass, then logic ops combine whole
// words instead of branching per row.
void TruthWords(const Column& c, size_t n, std::vector<uint64_t>* out) {
  out->assign(ValidityBitmap::WordsFor(n), 0);
  const int64_t* v = c.ints().data();
  for (size_t i = 0; i < n; ++i) {
    (*out)[i >> 6] |= static_cast<uint64_t>(v[i] != 0) << (i & 63);
  }
  if (c.has_nulls()) {
    const uint64_t* mw = c.validity().words();
    for (size_t w = 0; w < out->size(); ++w) (*out)[w] &= mw[w];
  }
}

// Broadcasts a literal to a column of length n.
Column BroadcastLiteral(const Value& lit, size_t n) {
  Column out(lit.type);
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) out.AppendValue(lit);
  return out;
}

}  // namespace

Column Expr::Eval(const DataFrame& df) const {
  size_t n = df.num_rows();
  switch (kind_) {
    case ExprKind::kColumn:
      return df.ColumnByName(name_);
    case ExprKind::kLiteral:
      return BroadcastLiteral(literal_, n);
    case ExprKind::kArith:
      return EvalArith(arith_op_, children_[0]->Eval(df),
                       children_[1]->Eval(df));
    case ExprKind::kCompare:
      return EvalCompare(cmp_op_, children_[0]->Eval(df),
                         children_[1]->Eval(df));
    case ExprKind::kLogic: {
      Column l = children_[0]->Eval(df);
      Column r = children_[1]->Eval(df);
      Column out(ValueType::kBool);
      auto& v = *out.mutable_ints();
      v.resize(n);
      // Truth-word combine: 64 rows per AND/OR.
      std::vector<uint64_t> ta, tb;
      TruthWords(l, n, &ta);
      TruthWords(r, n, &tb);
      if (logic_op_ == LogicOp::kAnd) {
        for (size_t w = 0; w < ta.size(); ++w) ta[w] &= tb[w];
      } else {
        for (size_t w = 0; w < ta.size(); ++w) ta[w] |= tb[w];
      }
      for (size_t i = 0; i < n; ++i) {
        v[i] = static_cast<int64_t>((ta[i >> 6] >> (i & 63)) & 1);
      }
      return out;
    }
    case ExprKind::kNot: {
      Column c = children_[0]->Eval(df);
      Column out(ValueType::kBool);
      auto& v = *out.mutable_ints();
      v.resize(n);
      std::vector<uint64_t> t;
      TruthWords(c, n, &t);
      for (size_t i = 0; i < n; ++i) {
        v[i] = static_cast<int64_t>(((t[i >> 6] >> (i & 63)) & 1) ^ 1);
      }
      return out;
    }
    case ExprKind::kLike: {
      Column c = children_[0]->Eval(df);
      CheckArg(c.type() == ValueType::kString, "LIKE over non-string");
      Column out(ValueType::kBool);
      auto& v = *out.mutable_ints();
      v.resize(n, 0);
      if (c.is_dict() && c.dict()->size() < n) {
        // Match each distinct entry once, then map codes through the memo.
        // Only profitable when the dict is smaller than the partial —
        // small partials over a large shared dict stay row-wise.
        const StringDict& dict = *c.dict();
        std::vector<uint8_t> match(dict.size());
        for (size_t k = 0; k < dict.size(); ++k) {
          match[k] = LikeMatch(dict.At(static_cast<int32_t>(k)), pattern_);
        }
        const auto& codes = c.codes();
        for (size_t i = 0; i < n; ++i) {
          if (c.IsValid(i)) v[i] = match[codes[i]];
        }
        return out;
      }
      for (size_t i = 0; i < n; ++i) {
        if (c.IsValid(i)) v[i] = LikeMatch(c.StringAt(i), pattern_) ? 1 : 0;
      }
      return out;
    }
    case ExprKind::kInList: {
      Column c = children_[0]->Eval(df);
      Column out(ValueType::kBool);
      auto& v = *out.mutable_ints();
      v.resize(n, 0);
      if (c.is_dict()) {
        // Membership per distinct entry once, then map codes.
        const StringDict& dict = *c.dict();
        std::vector<uint8_t> member(dict.size(), 0);
        for (const auto& cand : list_) {
          if (cand.type != ValueType::kString || cand.is_null) continue;
          int32_t code = dict.Find(cand.s);
          if (code != StringDict::kNotFound) member[code] = 1;
        }
        const auto& codes = c.codes();
        for (size_t i = 0; i < n; ++i) {
          if (c.IsValid(i)) v[i] = member[codes[i]];
        }
        return out;
      }
      for (size_t i = 0; i < n; ++i) {
        if (c.IsNull(i)) continue;
        Value row = c.GetValue(i);
        for (const auto& cand : list_) {
          if (row == cand) {
            v[i] = 1;
            break;
          }
        }
      }
      return out;
    }
    case ExprKind::kCase: {
      Column cond = children_[0]->Eval(df);
      Column t = children_[1]->Eval(df);
      Column f = children_[2]->Eval(df);
      bool to_double = t.type() == ValueType::kFloat64 ||
                       f.type() == ValueType::kFloat64;
      Column out(to_double ? ValueType::kFloat64 : t.type());
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        bool take_then = cond.IsValid(i) && cond.ints()[i] != 0;
        const Column& src = take_then ? t : f;
        if (src.IsNull(i)) {
          out.AppendNull();
        } else if (to_double) {
          out.AppendDouble(src.DoubleAt(i));
        } else if (out.type() == ValueType::kString) {
          out.AppendFrom(src, i);  // keeps dict codes when branches share one
        } else {
          out.AppendInt(src.IntAt(i));
        }
      }
      return out;
    }
    case ExprKind::kCoalesce: {
      Column c = children_[0]->Eval(df);
      if (!c.has_nulls()) return c;
      Column out(c.type());
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        if (c.IsNull(i)) {
          out.AppendValue(literal_);
        } else {
          out.AppendFrom(c, i);
        }
      }
      return out;
    }
    case ExprKind::kSubstr: {
      Column c = children_[0]->Eval(df);
      CheckArg(c.type() == ValueType::kString, "SUBSTR over non-string");
      Column out(ValueType::kString);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        const std::string& s = c.StringAt(i);
        size_t start = static_cast<size_t>(std::max<int64_t>(
            substr_start_ - 1, 0));  // SQL is 1-based
        if (start >= s.size()) {
          out.AppendString("");
        } else {
          out.AppendString(
              s.substr(start, static_cast<size_t>(substr_len_)));
        }
      }
      return out;
    }
    case ExprKind::kYear: {
      Column c = children_[0]->Eval(df);
      Column out(ValueType::kInt64);
      auto& v = *out.mutable_ints();
      v.resize(n);
      for (size_t i = 0; i < n; ++i) v[i] = ExtractYear(c.ints()[i]);
      return out;
    }
    case ExprKind::kIsNull: {
      Column c = children_[0]->Eval(df);
      Column out(ValueType::kBool);
      auto& v = *out.mutable_ints();
      v.resize(n, 0);
      if (c.has_nulls()) {
        // Complement of the validity bitmap, expanded word-by-word;
        // all-valid words skip their 64 rows.
        const uint64_t* mw = c.validity().words();
        const size_t nwords = ValidityBitmap::WordsFor(n);
        for (size_t w = 0; w < nwords; ++w) {
          if (mw[w] == ~0ULL) continue;
          const size_t base = w << 6;
          const size_t lim = std::min(n, base + 64);
          for (size_t i = base; i < lim; ++i) {
            v[i] = static_cast<int64_t>(((mw[w] >> (i & 63)) & 1) ^ 1);
          }
        }
      }
      return out;
    }
  }
  throw Error("unreachable expr kind");
}

void Expr::EvalWithVariance(
    const DataFrame& df,
    const std::unordered_map<std::string, const std::vector<double>*>& var_of,
    Column* out_value, std::vector<double>* out_var) const {
  size_t n = df.num_rows();
  switch (kind_) {
    case ExprKind::kColumn: {
      *out_value = df.ColumnByName(name_);
      auto it = var_of.find(name_);
      if (it != var_of.end()) {
        *out_var = *it->second;
      } else {
        out_var->assign(n, 0.0);
      }
      return;
    }
    case ExprKind::kArith: {
      Column lv, rv;
      std::vector<double> lvar, rvar;
      children_[0]->EvalWithVariance(df, var_of, &lv, &lvar);
      children_[1]->EvalWithVariance(df, var_of, &rv, &rvar);
      *out_value = EvalArith(arith_op_, lv, rv);
      out_var->resize(n);
      for (size_t i = 0; i < n; ++i) {
        double a = lv.DoubleAt(i), b = rv.DoubleAt(i);
        double va = lvar[i], vb = rvar[i];
        switch (arith_op_) {
          case ArithOp::kAdd:
          case ArithOp::kSub:
            (*out_var)[i] = va + vb;
            break;
          case ArithOp::kMul:
            (*out_var)[i] = b * b * va + a * a * vb;
            break;
          case ArithOp::kDiv: {
            if (b == 0.0) {
              (*out_var)[i] = 0.0;
            } else {
              double f = a / b;
              (*out_var)[i] = va / (b * b) + f * f * vb / (b * b);
            }
            break;
          }
        }
      }
      return;
    }
    case ExprKind::kCase: {
      // Differentiable in the branches; the condition is a switch.
      Column cond = children_[0]->Eval(df);
      Column tv, fv;
      std::vector<double> tvar, fvar;
      children_[1]->EvalWithVariance(df, var_of, &tv, &tvar);
      children_[2]->EvalWithVariance(df, var_of, &fv, &fvar);
      *out_value = Eval(df);
      out_var->resize(n);
      for (size_t i = 0; i < n; ++i) {
        bool take_then = cond.IsValid(i) && cond.ints()[i] != 0;
        (*out_var)[i] = take_then ? tvar[i] : fvar[i];
      }
      return;
    }
    default:
      // Literals, comparisons, strings etc.: exact values.
      *out_value = Eval(df);
      out_var->assign(n, 0.0);
      return;
  }
}

void Expr::CollectColumns(std::set<std::string>* out) const {
  if (kind_ == ExprKind::kColumn) out->insert(name_);
  for (const auto& c : children_) c->CollectColumns(out);
}

bool Expr::ReadsMutable(const Schema& schema) const {
  std::set<std::string> cols;
  CollectColumns(&cols);
  for (const auto& c : cols) {
    size_t idx = schema.FindField(c);
    if (idx != Schema::npos && schema.field(idx).mutable_attr) return true;
  }
  return false;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumn:
      return name_;
    case ExprKind::kLiteral:
      return literal_.ToString();
    case ExprKind::kArith: {
      const char* ops[] = {"+", "-", "*", "/"};
      return "(" + children_[0]->ToString() + " " +
             ops[static_cast<int>(arith_op_)] + " " +
             children_[1]->ToString() + ")";
    }
    case ExprKind::kCompare: {
      const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
      return "(" + children_[0]->ToString() + " " +
             ops[static_cast<int>(cmp_op_)] + " " +
             children_[1]->ToString() + ")";
    }
    case ExprKind::kLogic:
      return "(" + children_[0]->ToString() +
             (logic_op_ == LogicOp::kAnd ? " AND " : " OR ") +
             children_[1]->ToString() + ")";
    case ExprKind::kNot:
      return "NOT " + children_[0]->ToString();
    case ExprKind::kLike:
      return children_[0]->ToString() + " LIKE '" + pattern_ + "'";
    case ExprKind::kInList:
      return children_[0]->ToString() + " IN (...)";
    case ExprKind::kCase:
      return "CASE WHEN " + children_[0]->ToString() + " THEN " +
             children_[1]->ToString() + " ELSE " + children_[2]->ToString() +
             " END";
    case ExprKind::kCoalesce:
      return "COALESCE(" + children_[0]->ToString() + ", " +
             literal_.ToString() + ")";
    case ExprKind::kSubstr:
      return "SUBSTR(" + children_[0]->ToString() + ")";
    case ExprKind::kYear:
      return "YEAR(" + children_[0]->ToString() + ")";
    case ExprKind::kIsNull:
      return children_[0]->ToString() + " IS NULL";
  }
  return "?";
}

}  // namespace wake
