// ValidityBitmap: bit-packed null mask, one bit per row, 64 rows per word.
//
// Replaces the byte-per-row `std::vector<uint8_t>` validity vector: 8×
// smaller, and — more importantly — null propagation, null counting, and
// filter/selection kernels become word-at-a-time bitwise loops (64 rows
// per AND/OR/popcount) instead of per-row byte branches.
//
// Contracts (every consumer relies on these):
//   - Lazy allocation: an EMPTY bitmap (no words) means "all rows valid".
//     The common non-null path never allocates or touches mask memory.
//   - Bit i lives at words()[i >> 6], bit position (i & 63) — LSB-first
//     within the word. This matches the wakeblock on-disk packed layout
//     (bits[r/8] >> (r%8)) when words are viewed as little-endian bytes.
//   - Set bit (1) == valid, clear bit (0) == null.
//   - Padding invariant: when allocated, all bits past `bits()` in the
//     last word are 1. This makes AllValid() a plain all-words == ~0
//     scan, CountNulls() a popcount sum with no tail masking, and word
//     iteration in kernels safe without per-call boundary handling.
//     Every mutator here maintains it; code writing words directly
//     (parallel gathers) must write full 64-row ranges or re-normalize.
#ifndef WAKE_FRAME_VALIDITY_H_
#define WAKE_FRAME_VALIDITY_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wake {

#if defined(_MSC_VER)
#include <intrin.h>
#endif

inline int PopCount64(uint64_t x) {
#if defined(_MSC_VER)
  return static_cast<int>(__popcnt64(x));
#else
  return __builtin_popcountll(x);
#endif
}

inline int CountTrailingZeros64(uint64_t x) {
#if defined(_MSC_VER)
  unsigned long idx;
  _BitScanForward64(&idx, x);
  return static_cast<int>(idx);
#else
  return __builtin_ctzll(x);
#endif
}

class ValidityBitmap {
 public:
  ValidityBitmap() = default;

  /// Allocated mask of n rows, all valid (all bits 1, padding included).
  static ValidityBitmap AllValid(size_t n) {
    ValidityBitmap v;
    v.bits_ = n;
    v.words_.assign(WordsFor(n), ~0ULL);
    return v;
  }

  static size_t WordsFor(size_t n) { return (n + 63) / 64; }

  /// True when unallocated — all rows implicitly valid.
  bool empty() const { return words_.empty(); }
  size_t bits() const { return bits_; }
  size_t num_words() const { return words_.size(); }

  /// Bit for row i; caller must check !empty() first (Column::IsValid
  /// folds the empty check into its own fast path).
  bool Get(size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1; }
  void SetValid(size_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
  void SetNull(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  const uint64_t* words() const { return words_.data(); }
  uint64_t* mutable_words() { return words_.data(); }

  void Clear() {
    words_.clear();
    bits_ = 0;
  }

  /// Reinterprets the map as n all-valid rows (allocating). Used before
  /// the first SetNull on a column that so far had no mask.
  void AssignAllValid(size_t n) {
    bits_ = n;
    words_.assign(WordsFor(n), ~0ULL);
  }

  /// Appends one bit. Padding bits are pre-set to 1, so appending a valid
  /// row into a fresh word is just the push_back.
  void Append(bool valid) {
    if ((bits_ & 63) == 0) words_.push_back(~0ULL);
    if (!valid) words_.back() &= ~(1ULL << (bits_ & 63));
    ++bits_;
  }

  /// Extends by n valid rows (padding bits already 1 — only the word
  /// count changes).
  void AppendAllValid(size_t n) {
    bits_ += n;
    words_.resize(WordsFor(bits_), ~0ULL);
  }

  /// Appends all bits of `other` (cross-word shift merge).
  void AppendBitmap(const ValidityBitmap& other) {
    if (other.bits_ == 0) return;
    size_t shift = bits_ & 63;
    size_t old_words = words_.size();
    bits_ += other.bits_;
    words_.resize(WordsFor(bits_), ~0ULL);
    if (shift == 0) {
      for (size_t w = 0; w < other.words_.size(); ++w) {
        words_[old_words + w] = other.words_[w];
      }
    } else {
      // Low `shift` bits of the boundary word belong to the old content;
      // splice each source word across two destination words.
      size_t dst = old_words - 1;
      uint64_t keep_mask = (1ULL << shift) - 1;
      words_[dst] &= keep_mask;
      words_[dst] |= other.words_[0] << shift;
      for (size_t w = 1; w < other.words_.size(); ++w) {
        words_[dst + w] = (other.words_[w - 1] >> (64 - shift)) |
                          (other.words_[w] << shift);
      }
      size_t last = dst + other.words_.size();
      if (last < words_.size()) {
        words_[last] = other.words_.back() >> (64 - shift);
      }
    }
    NormalizePadding();
  }

  /// Bits [begin, end) as a new bitmap (handles unaligned begin).
  ValidityBitmap Slice(size_t begin, size_t end) const {
    ValidityBitmap out;
    size_t n = end - begin;
    out.bits_ = n;
    out.words_.assign(WordsFor(n), ~0ULL);
    size_t shift = begin & 63;
    size_t src = begin >> 6;
    if (shift == 0) {
      for (size_t w = 0; w < out.words_.size(); ++w) {
        out.words_[w] = words_[src + w];
      }
    } else {
      for (size_t w = 0; w < out.words_.size(); ++w) {
        uint64_t lo = words_[src + w] >> shift;
        uint64_t hi = (src + w + 1 < words_.size())
                          ? words_[src + w + 1] << (64 - shift)
                          : ~0ULL << (64 - shift);
        out.words_[w] = lo | hi;
      }
    }
    out.NormalizePadding();
    return out;
  }

  size_t CountNulls() const {
    // Padding bits are 1, so no tail masking is needed.
    size_t set = 0;
    for (uint64_t w : words_) set += static_cast<size_t>(PopCount64(w));
    return bits_ - (set - (words_.size() * 64 - bits_));
  }

  /// True when every logical bit is set (padding invariant makes this a
  /// plain word scan). An empty bitmap is trivially all-valid.
  bool AllValid() const {
    for (uint64_t w : words_) {
      if (w != ~0ULL) return false;
    }
    return true;
  }

  /// Forces padding bits in the last word to 1 (call after writing words
  /// directly from external data).
  void NormalizePadding() {
    size_t tail = bits_ & 63;
    if (tail != 0 && !words_.empty()) words_.back() |= ~0ULL << tail;
  }

  /// --- boundary conversions ---

  /// From LSB-first packed bytes (wakeblock layout: bit r = bytes[r/8]
  /// >> (r%8) & 1). Forged trailing bits in the source are normalized
  /// away, keeping the padding invariant even on corrupt input.
  static ValidityBitmap FromPackedBytes(const uint8_t* bytes, size_t n) {
    ValidityBitmap v;
    v.bits_ = n;
    v.words_.assign(WordsFor(n), ~0ULL);
    size_t nbytes = (n + 7) / 8;
    for (size_t b = 0; b < nbytes; ++b) {
      size_t w = b >> 3;
      size_t sh = (b & 7) * 8;
      v.words_[w] = (v.words_[w] & ~(0xFFULL << sh)) |
                    (static_cast<uint64_t>(bytes[b]) << sh);
    }
    v.NormalizePadding();
    return v;
  }

  /// Into LSB-first packed bytes; `out` must hold (bits()+7)/8 bytes.
  /// Trailing padding bits within the last byte are emitted as 0 so the
  /// packed form is canonical (wakeblock writes it to disk).
  void ToPackedBytes(uint8_t* out) const {
    size_t nbytes = (bits_ + 7) / 8;
    for (size_t b = 0; b < nbytes; ++b) {
      out[b] = static_cast<uint8_t>(words_[b >> 3] >> ((b & 7) * 8));
    }
    size_t tail = bits_ & 7;
    if (tail != 0 && nbytes > 0) {
      out[nbytes - 1] &= static_cast<uint8_t>((1u << tail) - 1);
    }
  }

  /// From one 0/1 byte per row (wire protocol / wpart on-disk layout).
  static ValidityBitmap FromBoolBytes(const uint8_t* bytes, size_t n) {
    ValidityBitmap v;
    v.bits_ = n;
    v.words_.assign(WordsFor(n), ~0ULL);
    for (size_t i = 0; i < n; ++i) {
      if (bytes[i] == 0) v.words_[i >> 6] &= ~(1ULL << (i & 63));
    }
    return v;
  }

  /// Into one 0/1 byte per row; `out` must hold bits() bytes.
  void ToBoolBytes(uint8_t* out) const {
    for (size_t i = 0; i < bits_; ++i) {
      out[i] = static_cast<uint8_t>((words_[i >> 6] >> (i & 63)) & 1);
    }
  }

  /// Heap footprint (capacity-based, matching Column::ByteSize).
  size_t CapacityBytes() const { return words_.capacity() * sizeof(uint64_t); }

  bool operator==(const ValidityBitmap& o) const {
    return bits_ == o.bits_ && words_ == o.words_;
  }

 private:
  std::vector<uint64_t> words_;
  size_t bits_ = 0;
};

}  // namespace wake

#endif  // WAKE_FRAME_VALIDITY_H_
