#include "frame/data_frame.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/flat_hash.h"
#include "common/strings.h"
#include "common/worker_pool.h"

namespace wake {

DataFrame::DataFrame(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    columns_.emplace_back(schema_.field(i).type);
  }
}

const Column& DataFrame::ColumnByName(const std::string& name) const {
  return columns_[schema_.FieldIndex(name)];
}

void DataFrame::AddColumn(Field field, Column column) {
  CheckArg(field.type == column.type(), "AddColumn: field/column type mismatch");
  CheckArg(columns_.empty() || column.size() == num_rows(),
           "AddColumn: row count mismatch for '" + field.name + "'");
  schema_.AddField(std::move(field));
  columns_.push_back(std::move(column));
}

std::vector<size_t> DataFrame::ColumnIndices(
    const std::vector<std::string>& names) const {
  std::vector<size_t> out;
  out.reserve(names.size());
  for (const auto& n : names) out.push_back(schema_.FieldIndex(n));
  return out;
}

DataFrame DataFrame::Take(const std::vector<uint32_t>& indices) const {
  DataFrame out;
  out.schema_ = schema_;
  out.columns_.reserve(columns_.size());
  for (const auto& c : columns_) out.columns_.push_back(c.Take(indices));
  return out;
}

DataFrame DataFrame::FilterBy(const std::vector<uint8_t>& mask) const {
  DataFrame out;
  out.schema_ = schema_;
  out.columns_.reserve(columns_.size());
  for (const auto& c : columns_) out.columns_.push_back(c.FilterBy(mask));
  return out;
}

DataFrame DataFrame::FilterBy(const Column& pred) const {
  CheckArg(pred.size() == num_rows(), "filter predicate length mismatch");
  return Take(Column::SelectionFrom(pred));
}

DataFrame DataFrame::Slice(size_t begin, size_t end) const {
  DataFrame out;
  out.schema_ = schema_;
  out.columns_.reserve(columns_.size());
  for (const auto& c : columns_) out.columns_.push_back(c.Slice(begin, end));
  return out;
}

DataFrame DataFrame::Select(const std::vector<std::string>& names) const {
  DataFrame out;
  for (const auto& n : names) {
    size_t idx = schema_.FieldIndex(n);
    out.AddColumn(schema_.field(idx), columns_[idx]);
  }
  out.mutable_schema()->set_primary_key(schema_.primary_key());
  out.mutable_schema()->set_clustering_key(schema_.clustering_key());
  return out;
}

void DataFrame::Append(const DataFrame& other) {
  if (columns_.empty()) {
    *this = other;
    return;
  }
  CheckArg(schema_.SameFields(other.schema_),
           "Append: schema mismatch " + schema_.ToString() + " vs " +
               other.schema_.ToString());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].AppendColumn(other.columns_[i]);
  }
}

DataFrame DataFrame::SortBy(const std::vector<SortKey>& keys) const {
  return Take(SortedIndices(keys));
}

namespace {
// Rows per sort morsel (parallel SortedIndices). Must only affect wall
// time, never the result: each morsel's run is fully ordered under the
// same total comparator, so the k-way merge reproduces the serial sort.
constexpr size_t kSortMorselRows = 32 * 1024;
}  // namespace

std::vector<uint32_t> DataFrame::SortedIndices(const std::vector<SortKey>& keys,
                                               size_t limit,
                                               WorkerPool* pool) const {
  std::vector<size_t> cols;
  std::vector<bool> desc;
  for (const auto& k : keys) {
    cols.push_back(schema_.FieldIndex(k.column));
    desc.push_back(k.descending);
  }
  const size_t n = num_rows();
  // Total order: sort keys, then row index — exactly the stable sort of
  // the keys alone, but usable with partial_sort and run merges.
  auto less = [&](uint32_t a, uint32_t b) {
    for (size_t i = 0; i < cols.size(); ++i) {
      int c = columns_[cols[i]].CompareRows(a, columns_[cols[i]], b);
      if (c != 0) return desc[i] ? c > 0 : c < 0;
    }
    return a < b;
  };
  const size_t k = (limit == 0 || limit > n) ? n : limit;
  if (pool == nullptr || pool->workers() <= 1 || n < 2 * kSortMorselRows) {
    std::vector<uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    if (k < n) {
      std::partial_sort(order.begin(), order.begin() + k, order.end(), less);
      order.resize(k);
    } else {
      std::sort(order.begin(), order.end(), less);
    }
    return order;
  }
  // Per-morsel top-k runs, then a k-way heap merge. Each run only ever
  // needs its first k rows ordered — the rest can never reach the merged
  // prefix.
  const size_t nruns = (n + kSortMorselRows - 1) / kSortMorselRows;
  std::vector<std::vector<uint32_t>> runs(nruns);
  pool->ParallelFor(n, kSortMorselRows, [&](size_t b, size_t e) {
    std::vector<uint32_t>& run = runs[b / kSortMorselRows];
    run.resize(e - b);
    std::iota(run.begin(), run.end(), static_cast<uint32_t>(b));
    if (k < run.size()) {
      std::partial_sort(run.begin(), run.begin() + k, run.end(), less);
      run.resize(k);
    } else {
      std::sort(run.begin(), run.end(), less);
    }
  });
  struct Head {
    uint32_t row;
    uint32_t run;
    uint32_t pos;
  };
  // Min-heap on the total order: the pop sequence is unique, so the
  // merged output is independent of worker count and run layout.
  auto head_greater = [&](const Head& x, const Head& y) {
    return less(y.row, x.row);
  };
  std::vector<Head> heap;
  heap.reserve(nruns);
  for (uint32_t r = 0; r < nruns; ++r) {
    if (!runs[r].empty()) heap.push_back({runs[r][0], r, 0});
  }
  std::make_heap(heap.begin(), heap.end(), head_greater);
  std::vector<uint32_t> out;
  out.reserve(k);
  while (!heap.empty() && out.size() < k) {
    std::pop_heap(heap.begin(), heap.end(), head_greater);
    Head h = heap.back();
    heap.pop_back();
    out.push_back(h.row);
    if (h.pos + 1 < runs[h.run].size()) {
      heap.push_back({runs[h.run][h.pos + 1], h.run, h.pos + 1});
      std::push_heap(heap.begin(), heap.end(), head_greater);
    }
  }
  return out;
}

namespace {
constexpr uint64_t kRowHashSeed = 0x2545f4914f6cdd1dULL;
}  // namespace

uint64_t DataFrame::HashRowKeys(const std::vector<size_t>& key_cols,
                                size_t row) const {
  uint64_t h = kRowHashSeed;
  for (size_t c : key_cols) h = columns_[c].HashRow(row, h);
  return h;
}

std::vector<uint64_t> DataFrame::HashRowsBatch(
    const std::vector<size_t>& key_cols) const {
  std::vector<uint64_t> hashes;
  HashRowsBatch(key_cols, &hashes);
  return hashes;
}

void DataFrame::HashRowsBatch(const std::vector<size_t>& key_cols,
                              std::vector<uint64_t>* out) const {
  out->assign(num_rows(), kRowHashSeed);
  for (size_t c : key_cols) columns_[c].HashInto(out->data(), out->size());
}

void DataFrame::HashRowsBatchRange(const std::vector<size_t>& key_cols,
                                   size_t begin, size_t end,
                                   std::vector<uint64_t>* out) const {
  out->assign(end - begin, kRowHashSeed);
  for (size_t c : key_cols) {
    columns_[c].HashIntoRange(out->data(), begin, end);
  }
}

bool DataFrame::KeysEqual(const std::vector<size_t>& cols, size_t i,
                          const DataFrame& other,
                          const std::vector<size_t>& other_cols,
                          size_t j) const {
  for (size_t k = 0; k < cols.size(); ++k) {
    if (columns_[cols[k]].CompareRows(i, other.columns_[other_cols[k]], j) !=
        0) {
      return false;
    }
  }
  return true;
}

bool DataFrame::ApproxEquals(const DataFrame& other, double rel_tol,
                             std::string* diff) const {
  auto fail = [&](const std::string& msg) {
    if (diff) *diff = msg;
    return false;
  };
  if (!schema_.SameFields(other.schema_)) {
    return fail("schema mismatch: " + schema_.ToString() + " vs " +
                other.schema_.ToString());
  }
  if (num_rows() != other.num_rows()) {
    return fail(StrFormat("row count %zu vs %zu", num_rows(),
                          other.num_rows()));
  }
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Column& a = columns_[c];
    const Column& b = other.columns_[c];
    for (size_t r = 0; r < num_rows(); ++r) {
      if (a.IsNull(r) != b.IsNull(r)) {
        return fail(StrFormat("null mismatch at row %zu col %s", r,
                              schema_.field(c).name.c_str()));
      }
      if (a.IsNull(r)) continue;
      bool equal;
      if (a.type() == ValueType::kString) {
        equal = a.StringAt(r) == b.StringAt(r);
      } else if (a.type() == ValueType::kFloat64) {
        double x = a.DoubleAt(r), y = b.DoubleAt(r);
        double scale = std::max({std::fabs(x), std::fabs(y), 1.0});
        equal = std::fabs(x - y) <= rel_tol * scale;
      } else {
        equal = a.IntAt(r) == b.IntAt(r);
      }
      if (!equal) {
        return fail(StrFormat(
            "value mismatch at row %zu col %s: %s vs %s", r,
            schema_.field(c).name.c_str(), a.GetValue(r).ToString().c_str(),
            b.GetValue(r).ToString().c_str()));
      }
    }
  }
  return true;
}

std::string DataFrame::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    if (i > 0) out += " | ";
    out += schema_.field(i).name;
  }
  out += "\n";
  size_t n = std::min(max_rows, num_rows());
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += " | ";
      out += columns_[c].GetValue(r).ToString();
    }
    out += "\n";
  }
  if (n < num_rows()) {
    out += StrFormat("... (%zu rows total)\n", num_rows());
  }
  return out;
}

size_t DataFrame::ByteSize() const {
  size_t bytes = 0;
  for (const auto& c : columns_) bytes += c.ByteSize();
  return bytes;
}

GroupIndex BuildGroups(const DataFrame& df,
                       const std::vector<std::string>& key_names) {
  GroupIndex out;
  size_t n = df.num_rows();
  out.group_of_row.resize(n);
  if (key_names.empty()) {
    // Global aggregate: a single group covering every row.
    std::fill(out.group_of_row.begin(), out.group_of_row.end(), 0);
    out.num_groups = n == 0 ? 0 : 1;
    if (n > 0) out.first_row.push_back(0);
    return out;
  }
  std::vector<size_t> cols = df.ColumnIndices(key_names);
  std::vector<uint64_t> hashes = df.HashRowsBatch(cols);
  // hash -> candidate group-id chains (collisions resolved by key verify).
  FlatHashIndex table;
  table.Reserve(n);
  KeyEq eq(df, cols, df, cols);
  for (size_t r = 0; r < n; ++r) {
    uint32_t gid = FlatHashIndex::kNil;
    for (uint32_t cand = table.Find(hashes[r]); cand != FlatHashIndex::kNil;
         cand = table.Next(cand)) {
      if (eq.Equal(r, out.first_row[cand])) {
        gid = cand;
        break;
      }
    }
    if (gid == FlatHashIndex::kNil) {
      gid = static_cast<uint32_t>(out.first_row.size());
      out.first_row.push_back(static_cast<uint32_t>(r));
      table.Insert(hashes[r], gid);
    }
    out.group_of_row[r] = gid;
  }
  out.num_groups = out.first_row.size();
  return out;
}

}  // namespace wake
