// DataFrame: a schema plus equal-length columns.
//
// This is the unit of data flowing between execution nodes: readers emit
// one DataFrame per partition (a "partial", §4.2), operators transform
// DataFrames, and edf states expose them to the user.
#ifndef WAKE_FRAME_DATA_FRAME_H_
#define WAKE_FRAME_DATA_FRAME_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "frame/column.h"
#include "frame/schema.h"

namespace wake {

class WorkerPool;

/// Sort specification for one column.
struct SortKey {
  std::string column;
  bool descending = false;
};

/// 2-D structured data: one Schema, N equal-length Columns.
class DataFrame {
 public:
  DataFrame() = default;
  explicit DataFrame(Schema schema);

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }

  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column* mutable_column(size_t i) { return &columns_[i]; }
  /// Column by name; throws wake::Error if absent.
  const Column& ColumnByName(const std::string& name) const;

  /// Appends a column (must match current row count if non-first).
  void AddColumn(Field field, Column column);

  /// Returns indices of the named columns; throws on unknown names.
  std::vector<size_t> ColumnIndices(
      const std::vector<std::string>& names) const;

  /// --- row-set transforms (all return new frames) ---
  DataFrame Take(const std::vector<uint32_t>& indices) const;
  DataFrame FilterBy(const std::vector<uint8_t>& mask) const;
  /// Selection-kernel filter: keeps rows where `pred` (a bool column of
  /// matching length) is valid and non-zero. Builds a popcount-sized
  /// selection vector word-at-a-time, then gathers — no per-row byte
  /// mask materialization.
  DataFrame FilterBy(const Column& pred) const;
  DataFrame Slice(size_t begin, size_t end) const;
  DataFrame Head(size_t n) const { return Slice(0, std::min(n, num_rows())); }
  /// Keeps only the named columns, in the given order.
  DataFrame Select(const std::vector<std::string>& names) const;

  /// Appends all rows of `other` (schemas must have identical fields).
  void Append(const DataFrame& other);

  /// Stable sort by the given keys; nulls first on ascending.
  DataFrame SortBy(const std::vector<SortKey>& keys) const;

  /// Row order SortBy would gather, truncated to the first `limit` rows
  /// when limit > 0. The comparator is total (sort keys, then row index
  /// as tie-break), so the result equals the stable sort exactly — and
  /// per-morsel top-k sorts merged k-way on `pool` reproduce it at any
  /// worker count (morsel decomposition is a function of n only).
  std::vector<uint32_t> SortedIndices(const std::vector<SortKey>& keys,
                                      size_t limit = 0,
                                      WorkerPool* pool = nullptr) const;

  /// Hash of the key columns `key_cols` for row `row`.
  uint64_t HashRowKeys(const std::vector<size_t>& key_cols, size_t row) const;

  /// Hashes of the key columns for every row, computed column-at-a-time.
  /// hashes[r] == HashRowKeys(key_cols, r) for all r.
  std::vector<uint64_t> HashRowsBatch(
      const std::vector<size_t>& key_cols) const;

  /// As above, writing into `out` (kernels reuse scratch buffers to avoid
  /// re-faulting multi-MB allocations on every partial).
  void HashRowsBatch(const std::vector<size_t>& key_cols,
                     std::vector<uint64_t>* out) const;

  /// Ranged form for morsel-parallel kernels: out gets end - begin
  /// entries, (*out)[r - begin] == HashRowKeys(key_cols, r).
  void HashRowsBatchRange(const std::vector<size_t>& key_cols, size_t begin,
                          size_t end, std::vector<uint64_t>* out) const;

  /// True if row `i` of this frame equals row `j` of `other` on the given
  /// (parallel) key column index lists.
  bool KeysEqual(const std::vector<size_t>& cols, size_t i,
                 const DataFrame& other, const std::vector<size_t>& other_cols,
                 size_t j) const;

  /// Whole-frame equality with tolerance for floats (testing aid).
  bool ApproxEquals(const DataFrame& other, double rel_tol = 1e-9,
                    std::string* diff = nullptr) const;

  /// Pretty table; at most `max_rows` rows.
  std::string ToString(size_t max_rows = 20) const;

  /// Approximate heap footprint in bytes.
  size_t ByteSize() const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
};

using DataFramePtr = std::shared_ptr<const DataFrame>;

/// Typed row-equality over parallel key-column lists — the inlined hot-loop
/// form of DataFrame::KeysEqual used when verifying hash-index candidates.
/// Matches KeysEqual semantics exactly: nulls equal nulls, int/float keys
/// compare promoted, NaNs compare equal. The per-pair comparison mode is
/// resolved once at construction; string pairs sharing one dict compare
/// int32 codes instead of bytes.
class KeyEq {
 public:
  KeyEq(const DataFrame& left, const std::vector<size_t>& left_cols,
        const DataFrame& right, const std::vector<size_t>& right_cols) {
    cols_.reserve(left_cols.size());
    for (size_t k = 0; k < left_cols.size(); ++k) {
      cols_.push_back(
          MakePair(left.column(left_cols[k]), right.column(right_cols[k])));
    }
  }

  /// Single-pair form for kernels comparing one synthesized key column
  /// (e.g. the cross-dict shadow column of a probe) against a stored one.
  KeyEq(const Column& a, const Column& b) { cols_.push_back(MakePair(a, b)); }

  /// Hints the cache to load right-side row `j` of every key column.
  void PrefetchRight(size_t j) const {
    for (const auto& p : cols_) {
      const Column& b = *p.b;
      if (b.type() == ValueType::kString) {
        if (b.is_dict()) {
          __builtin_prefetch(b.codes().data() + j);
        } else {
          __builtin_prefetch(b.strings().data() + j);
        }
      } else if (IsIntPhysical(b.type())) {
        __builtin_prefetch(b.ints().data() + j);
      } else {
        __builtin_prefetch(b.doubles().data() + j);
      }
    }
  }

  bool Equal(size_t i, size_t j) const {
    for (const auto& p : cols_) {
      const Column& a = *p.a;
      const Column& b = *p.b;
      const bool an = a.IsNull(i), bn = b.IsNull(j);
      if (an || bn) {
        if (an != bn) return false;
        continue;
      }
      switch (p.mode) {
        case Mode::kCode:
          if (a.codes()[i] != b.codes()[j]) return false;
          break;
        case Mode::kString:
          if (a.StringAt(i) != b.StringAt(j)) return false;
          break;
        case Mode::kInt:
          if (a.ints()[i] != b.ints()[j]) return false;
          break;
        case Mode::kDouble: {
          double x = a.DoubleAt(i), y = b.DoubleAt(j);
          if (x < y || y < x) return false;
          break;
        }
      }
    }
    return true;
  }

 private:
  enum class Mode : uint8_t { kInt, kDouble, kCode, kString };
  struct ColPair {
    const Column* a;
    const Column* b;
    Mode mode;
  };

  static ColPair MakePair(const Column& a, const Column& b) {
    Mode mode;
    if (a.type() == ValueType::kString) {
      mode = (a.is_dict() && a.dict() == b.dict()) ? Mode::kCode
                                                   : Mode::kString;
    } else if (IsIntPhysical(a.type()) && IsIntPhysical(b.type())) {
      mode = Mode::kInt;
    } else {
      mode = Mode::kDouble;
    }
    return {&a, &b, mode};
  }

  std::vector<ColPair> cols_;
};

/// Hash-based group index over key columns: assigns each row a dense group
/// id; used by aggregation in every engine.
struct GroupIndex {
  std::vector<uint32_t> group_of_row;   // size == num_rows
  std::vector<uint32_t> first_row;      // one representative row per group
  size_t num_groups = 0;
};

/// Builds a GroupIndex for `df` grouped on `key_names` (empty = one global
/// group containing every row; zero rows => zero groups unless
/// `global_group_if_empty`).
GroupIndex BuildGroups(const DataFrame& df,
                       const std::vector<std::string>& key_names);

}  // namespace wake

#endif  // WAKE_FRAME_DATA_FRAME_H_
