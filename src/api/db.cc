#include "api/db.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <utility>

#include "baseline/exact_engine.h"
#include "baseline/progressive_ola.h"
#include "common/channel.h"
#include "common/error.h"
#include "common/stopwatch.h"
#include "plan/optimizer.h"
#include "plan/props.h"
#include "sql/parser.h"

namespace wake {

// ---------------------------------------------------------------------------
// QueryHandle
// ---------------------------------------------------------------------------

/// Shared between the consumer-facing handle and the driver thread. The
/// driver produces states into `states` and publishes its terminal
/// outcome (final frame / error / cancelled) before setting `done`
/// (release); consumers read the outcome only after observing done
/// (acquire) — Wait() additionally joins the driver thread.
struct QueryHandle::Impl {
  // Immutable after Run().
  const Db* db = nullptr;
  PlanNodePtr plan;
  Schema schema;  // pinned result schema (for zero-state partials)
  RunOptions options;

  // The pull stream. Unbounded by default: the driver never blocks on a
  // slow consumer. With RunOptions::max_buffered_states the driver drops
  // the oldest queued snapshot instead of growing — snapshots are
  // cumulative, so the consumer only ever skips ahead.
  Channel<OlaState> states;

  std::atomic<bool> cancel_requested{false};
  std::atomic<bool> done{false};

  // Terminal outcome; written by the driver before done, read after.
  // Exactly one of: final_frame set (success or degraded partial), error
  // set (failure), was_cancelled (cooperative cancel ended the run).
  DataFramePtr final_frame;  // shared with the final OlaState, not copied
  double final_progress = 1.0;
  std::shared_ptr<const VarianceMap> final_variances;
  bool was_cancelled = false;
  std::exception_ptr error;

  // Resource budget. Armed on the caller's thread in Run() (so the
  // deadline covers admission-queue wait); released by the driver after
  // every engine thread is joined.
  ResourceTracker tracker;
  bool budgeted = false;

  // Admission ticket (null on a Db without an admission gate).
  AdmissionController::TicketPtr ticket;

  // Driver-thread bookkeeping for degraded terminals: the last state that
  // was delivered, so a breach that outruns the final snapshot still has
  // an estimate to return.
  OlaState last_state;
  bool got_state = false;

  // kOla machinery: the engine must outlive the run (declared first so
  // the run is destroyed first). Created on the driver thread *after*
  // admission; run_mu orders that creation against Cancel() and the
  // tracker's breach callback, either of which can fire before Start()
  // returns.
  std::unique_ptr<WakeEngine> engine;
  std::mutex run_mu;
  std::unique_ptr<EngineRun> run;

  std::mutex join_mu;  // serializes Wait() callers around the join
  std::thread driver;

  void Drive();
  void RunEngine(Stopwatch& clock, const StateCallback& deliver);
  void SettleBreach(Stopwatch& clock, const StateCallback& deliver);
  void Join();
};

void QueryHandle::Impl::Drive() {
  Stopwatch clock;
  auto deliver = [this](const OlaState& s) {
    if (s.is_final) {
      final_frame = s.frame;
      final_progress = s.progress;
      final_variances = s.variances;
    }
    last_state = s;
    got_state = true;
    if (options.on_state) options.on_state(s);
    if (options.max_buffered_states > 0) {
      while (states.size() >= options.max_buffered_states &&
             states.TryReceive()) {
      }
    }
    states.Send(s);
  };
  bool admitted = (ticket == nullptr);  // no gate = always admitted
  try {
    if (ticket != nullptr) {
      switch (db->admission()->Await(ticket, options.admission_timeout_ms)) {
        case AdmissionController::Outcome::kAdmitted:
          admitted = true;
          break;
        case AdmissionController::Outcome::kCancelled:
          was_cancelled = true;
          break;
        case AdmissionController::Outcome::kTimedOut:
          throw Error("query timed out waiting for admission",
                      ErrorCategory::kAdmissionTimeout);
      }
    }
    if (admitted) {
      if (cancel_requested.load(std::memory_order_relaxed)) {
        was_cancelled = true;
      } else {
        RunEngine(clock, deliver);
      }
    }
  } catch (const Error& e) {
    if (e.category() == ErrorCategory::kCancelled) {
      was_cancelled = true;
    } else {
      error = std::current_exception();
    }
  } catch (...) {
    error = std::current_exception();
  }
  try {
    SettleBreach(clock, deliver);
  } catch (...) {
    // deliver() runs user code and a channel send (itself a failpoint
    // site); a throw here must not unwind the driver thread.
    if (error == nullptr) error = std::current_exception();
  }
  if (admitted && ticket != nullptr) db->admission()->Release(ticket);
  // Every engine thread is joined by now (Collect joins before returning;
  // the blocking baselines have none): settle the session balance.
  if (budgeted) tracker.Release();
  // Publish the outcome before ending the stream, so a consumer that
  // observes end-of-stream from Next() always sees done() == true.
  done.store(true, std::memory_order_release);
  states.Close();  // ends the pull stream; queued states stay receivable
}

void QueryHandle::Impl::RunEngine(Stopwatch& clock,
                                  const StateCallback& deliver) {
  switch (options.engine) {
    case QueryEngine::kOla: {
      WakeOptions wopts;
      wopts.with_ci = options.with_ci;
      wopts.pool = db->pool();
      // Without a shared pool the session is serial by construction
      // (DbOptions::workers resolved to no pool); keep node bodies serial
      // rather than letting the engine re-derive a pool of its own.
      wopts.workers = 1;
      wopts.tracker = budgeted ? &tracker : nullptr;
      engine = std::make_unique<WakeEngine>(&db->catalog(), wopts);
      if (budgeted) {
        // Breach policy as the tracker's one-shot callback. It can fire
        // before Start() returns (e.g. a deadline that expired in the
        // admission queue), which is why it locks run_mu and why the
        // creation block below re-checks the latched state.
        if (options.on_breach == OnBreach::kDegrade) {
          tracker.set_on_breach([this] {
            std::lock_guard<std::mutex> lock(run_mu);
            if (run != nullptr) run->DegradeStop();
          });
        } else {
          tracker.set_on_breach([this] {
            std::lock_guard<std::mutex> lock(run_mu);
            if (run != nullptr) run->Cancel();
          });
        }
      }
      {
        std::lock_guard<std::mutex> lock(run_mu);
        run = engine->Start(plan);
        if (cancel_requested.load(std::memory_order_relaxed)) {
          run->Cancel();
        } else if (budgeted && tracker.breached()) {
          // The callback fired while `run` was still null.
          if (options.on_breach == OnBreach::kDegrade) {
            run->DegradeStop();
          } else {
            run->Cancel();
          }
        }
      }
      run->Collect(deliver);
      if (final_frame == nullptr) {
        // No final state: either a user cancel or a kFail breach stop
        // (SettleBreach turns the latter into kResourceExhausted).
        bool breach_stop = budgeted && tracker.breached() &&
                           !cancel_requested.load(std::memory_order_relaxed);
        if (!breach_stop) was_cancelled = run->cancelled();
      }
      break;
    }
    case QueryEngine::kExact: {
      ExactEngine exact(&db->catalog());
      exact.set_cancel_token(&cancel_requested);
      if (budgeted) exact.set_tracker(&tracker);
      DataFrame out = exact.Execute(plan);
      OlaState state;
      state.frame = std::make_shared<DataFrame>(std::move(out));
      state.progress = 1.0;
      state.is_final = true;
      state.elapsed_seconds = clock.ElapsedSeconds();
      deliver(state);
      break;
    }
    case QueryEngine::kProgressive: {
      ProgressiveOla progressive(&db->catalog());
      progressive.Execute(plan, deliver, &cancel_requested,
                          budgeted ? &tracker : nullptr);
      break;
    }
  }
}

void QueryHandle::Impl::SettleBreach(Stopwatch& clock,
                                     const StateCallback& deliver) {
  if (error != nullptr || was_cancelled) return;
  if (!budgeted || !tracker.breached()) return;
  if (options.on_breach == OnBreach::kFail) {
    // A final frame that raced the breach is still the exact answer;
    // otherwise the stop was budget-driven — fail as asked.
    if (final_frame == nullptr) {
      error = std::make_exception_ptr(
          Error("query exceeded its budget: " + tracker.BreachMessage(),
                ErrorCategory::kResourceExhausted));
    }
    return;
  }
  // kDegrade: guarantee a terminal snapshot even when the breach outran
  // the first state (empty frame, schema intact, progress 0).
  if (final_frame == nullptr) {
    OlaState state;
    state.frame = got_state ? last_state.frame
                            : std::make_shared<DataFrame>(schema);
    state.progress = got_state ? last_state.progress : 0.0;
    state.is_final = true;
    state.elapsed_seconds = clock.ElapsedSeconds();
    state.variances = got_state ? last_state.variances : nullptr;
    deliver(state);
  }
}

void QueryHandle::Impl::Join() {
  std::lock_guard<std::mutex> lock(join_mu);
  if (driver.joinable()) driver.join();
}

QueryHandle::QueryHandle(std::shared_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

QueryHandle::QueryHandle(QueryHandle&&) noexcept = default;

QueryHandle::~QueryHandle() {
  if (impl_ == nullptr) return;  // moved-from
  if (!impl_->done.load(std::memory_order_acquire)) Cancel();
  impl_->Join();
}

std::optional<OlaState> QueryHandle::Next() {
  if (impl_ == nullptr) return std::nullopt;  // moved-from
  return impl_->states.Receive();
}

std::optional<OlaState> QueryHandle::Next(std::chrono::milliseconds timeout) {
  if (impl_ == nullptr) return std::nullopt;  // moved-from
  return impl_->states.ReceiveFor(timeout);
}

void QueryHandle::Cancel() {
  if (impl_ == nullptr) return;  // moved-from
  impl_->cancel_requested.store(true, std::memory_order_relaxed);
  // A still-queued run dequeues immediately; an admitted one cancels
  // normally and frees its slot when the driver finishes.
  if (impl_->ticket != nullptr) impl_->db->admission()->Cancel(impl_->ticket);
  // kExact / kProgressive poll the flag; the OLA graph needs its channels
  // cancelled so blocked node threads unwind. run_mu orders this against
  // the driver still creating the run — Run()-then-Cancel() before the
  // engine even started must still stop the query (the driver re-checks
  // the flag after Start()).
  std::lock_guard<std::mutex> lock(impl_->run_mu);
  if (impl_->run != nullptr) impl_->run->Cancel();
}

void QueryHandle::Wait() {
  if (impl_ == nullptr) return;  // moved-from
  impl_->Join();
}

DataFrame QueryHandle::Final() {
  CheckArg(impl_ != nullptr, "Final() on a moved-from QueryHandle");
  Wait();
  if (impl_->error != nullptr) std::rethrow_exception(impl_->error);
  if (impl_->final_frame != nullptr) return *impl_->final_frame;
  if (impl_->was_cancelled) {
    throw Error("query cancelled before completion",
                ErrorCategory::kCancelled);
  }
  // No error, no cancel, no final state: the engine's stream ended dry
  // (e.g. the progressive baseline over a zero-partition table).
  throw Error("query produced no final state");
}

QueryResult QueryHandle::Result() {
  CheckArg(impl_ != nullptr, "Result() on a moved-from QueryHandle");
  Wait();
  if (impl_->error != nullptr) std::rethrow_exception(impl_->error);
  if (impl_->final_frame == nullptr) {
    if (impl_->was_cancelled) {
      throw Error("query cancelled before completion",
                  ErrorCategory::kCancelled);
    }
    throw Error("query produced no final state");
  }
  QueryResult result;
  result.frame = impl_->final_frame;
  result.progress = impl_->final_progress;
  result.variances = impl_->final_variances;
  // A breach that loses the race to natural completion changed nothing:
  // the frame covers 100% of the data, so it is the exact answer.
  if (impl_->budgeted && impl_->tracker.breached() &&
      impl_->final_progress < 1.0) {
    result.status = ResultStatus::kPartialBudget;
    result.breach = impl_->tracker.reason();
  }
  return result;
}

bool QueryHandle::done() const {
  if (impl_ == nullptr) return true;  // moved-from: nothing left to run
  return impl_->done.load(std::memory_order_acquire);
}

bool QueryHandle::cancelled() const {
  if (impl_ == nullptr) return false;  // moved-from
  return impl_->cancel_requested.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// PreparedQuery
// ---------------------------------------------------------------------------

QueryHandle PreparedQuery::Run(RunOptions options) const {
  auto impl = std::make_shared<QueryHandle::Impl>();
  impl->db = db_;
  impl->plan = plan_.node();
  impl->schema = schema_;
  impl->options = std::move(options);
  // Arm the budget on the caller's thread: the deadline runs from Run(),
  // so time spent in the admission queue counts against it.
  const RunOptions& ro = impl->options;
  impl->budgeted = ro.memory_limit_bytes > 0 || ro.timeout_ms > 0 ||
                   ro.max_rows_scanned > 0 ||
                   db_->session_tracker() != nullptr;
  if (impl->budgeted) {
    QueryBudget budget;
    budget.memory_limit_bytes = ro.memory_limit_bytes;
    budget.timeout_ms = ro.timeout_ms;
    budget.max_rows_scanned = ro.max_rows_scanned;
    impl->tracker.Arm(budget, db_->session_tracker());
  }
  // Admission gate: a full queue rejects synchronously, on this thread.
  // The engine itself starts on the driver thread, after admission —
  // a queued query holds no node threads and no engine state.
  if (db_->admission() != nullptr) impl->ticket = db_->admission()->Submit();
  impl->driver = std::thread([impl] { impl->Drive(); });
  return QueryHandle(std::move(impl));
}

DataFrame PreparedQuery::Execute(RunOptions options) const {
  return Run(std::move(options)).Final();
}

std::string PreparedQuery::Explain() const {
  return PlanToString(plan_.node());
}

// ---------------------------------------------------------------------------
// Db
// ---------------------------------------------------------------------------

Db::Db(const Catalog* catalog, DbOptions options)
    : catalog_(catalog), options_(options) {
  CheckArg(catalog != nullptr, "null catalog");
  pool_ = ResolveWorkerPool(options_.workers, &owned_pool_);
  if (options_.max_concurrent_queries > 0) {
    admission_ = std::make_unique<AdmissionController>(
        options_.max_concurrent_queries, options_.max_queued);
  }
  if (options_.total_memory_limit_bytes > 0) {
    session_tracker_ = std::make_unique<ResourceTracker>();
    session_tracker_->ArmSessionLimit(options_.total_memory_limit_bytes);
  }
}

Db::~Db() = default;

PreparedQuery Db::Prepare(const std::string& sql) const {
  return Finish(sql, sql::Parse(sql));
}

PreparedQuery Db::Prepare(const Plan& plan) const {
  CheckPlan(plan.node() != nullptr, "Prepare on empty plan");
  return Finish("", plan);
}

PreparedQuery Db::Finish(std::string sql, Plan plan) const {
  Schema schema;
  try {
    if (options_.optimize) {
      plan = Optimize(plan, *catalog_);
    }
    // Validate now (errors surface at Prepare, not mid-run) and pin the
    // result schema. Optimize() already validates, but the no-optimize
    // path must be just as loud.
    schema = InferProps(plan.node(), *catalog_).schema;
  } catch (const Error& e) {
    // Validation reuses frame/schema helpers whose throws default to
    // kExecution; at Prepare time they are plan errors by definition.
    if (e.category() == ErrorCategory::kExecution) {
      throw Error(e.what(), ErrorCategory::kPlan);
    }
    throw;
  }
  return PreparedQuery(this, std::move(sql), std::move(plan),
                       std::move(schema));
}

}  // namespace wake
