#include "api/db.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <utility>

#include "baseline/exact_engine.h"
#include "baseline/progressive_ola.h"
#include "common/channel.h"
#include "common/error.h"
#include "common/stopwatch.h"
#include "plan/optimizer.h"
#include "plan/props.h"
#include "sql/parser.h"

namespace wake {

// ---------------------------------------------------------------------------
// QueryHandle
// ---------------------------------------------------------------------------

/// Shared between the consumer-facing handle and the driver thread. The
/// driver produces states into `states` and publishes its terminal
/// outcome (final frame / error / cancelled) before setting `done`
/// (release); consumers read the outcome only after observing done
/// (acquire) — Wait() additionally joins the driver thread.
struct QueryHandle::Impl {
  // Immutable after Run().
  const Db* db = nullptr;
  PlanNodePtr plan;
  RunOptions options;

  // The pull stream. Unbounded: the driver never blocks on a slow
  // consumer, and a consumer that never pulls costs at most one frame
  // per emitted state (frames are shared pointers).
  Channel<OlaState> states;

  std::atomic<bool> cancel_requested{false};
  std::atomic<bool> done{false};

  // Terminal outcome; written by the driver before done, read after.
  // Exactly one of: final_frame set (success), error set (failure),
  // was_cancelled (cooperative cancel ended the run early).
  DataFramePtr final_frame;  // shared with the final OlaState, not copied
  bool was_cancelled = false;
  std::exception_ptr error;

  // kOla machinery: the engine must outlive the run (declared first so
  // the run is destroyed first). Created on the caller's thread in Run()
  // so Cancel() always has a live EngineRun to poke.
  std::unique_ptr<WakeEngine> engine;
  std::unique_ptr<EngineRun> run;

  std::mutex join_mu;  // serializes Wait() callers around the join
  std::thread driver;

  void Drive();
  void Join();
};

void QueryHandle::Impl::Drive() {
  Stopwatch clock;
  auto deliver = [this](const OlaState& s) {
    if (s.is_final) final_frame = s.frame;
    if (options.on_state) options.on_state(s);
    states.Send(s);
  };
  try {
    switch (options.engine) {
      case QueryEngine::kOla: {
        run->Collect(deliver);
        if (final_frame == nullptr) was_cancelled = run->cancelled();
        break;
      }
      case QueryEngine::kExact: {
        ExactEngine exact(&db->catalog());
        exact.set_cancel_token(&cancel_requested);
        DataFrame out = exact.Execute(plan);
        OlaState state;
        state.frame = std::make_shared<DataFrame>(std::move(out));
        state.progress = 1.0;
        state.is_final = true;
        state.elapsed_seconds = clock.ElapsedSeconds();
        deliver(state);
        break;
      }
      case QueryEngine::kProgressive: {
        ProgressiveOla progressive(&db->catalog());
        progressive.Execute(plan, deliver, &cancel_requested);
        break;
      }
    }
  } catch (const Error& e) {
    if (e.category() == ErrorCategory::kCancelled) {
      was_cancelled = true;
    } else {
      error = std::current_exception();
    }
  } catch (...) {
    error = std::current_exception();
  }
  // Publish the outcome before ending the stream, so a consumer that
  // observes end-of-stream from Next() always sees done() == true.
  done.store(true, std::memory_order_release);
  states.Close();  // ends the pull stream; queued states stay receivable
}

void QueryHandle::Impl::Join() {
  std::lock_guard<std::mutex> lock(join_mu);
  if (driver.joinable()) driver.join();
}

QueryHandle::QueryHandle(std::shared_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

QueryHandle::QueryHandle(QueryHandle&&) noexcept = default;

QueryHandle::~QueryHandle() {
  if (impl_ == nullptr) return;  // moved-from
  if (!impl_->done.load(std::memory_order_acquire)) Cancel();
  impl_->Join();
}

std::optional<OlaState> QueryHandle::Next() { return impl_->states.Receive(); }

std::optional<OlaState> QueryHandle::Next(std::chrono::milliseconds timeout) {
  return impl_->states.ReceiveFor(timeout);
}

void QueryHandle::Cancel() {
  impl_->cancel_requested.store(true, std::memory_order_relaxed);
  // kExact / kProgressive poll the flag; the OLA graph needs its channels
  // cancelled so blocked node threads unwind.
  if (impl_->run != nullptr) impl_->run->Cancel();
}

void QueryHandle::Wait() { impl_->Join(); }

DataFrame QueryHandle::Final() {
  Wait();
  if (impl_->error != nullptr) std::rethrow_exception(impl_->error);
  if (impl_->final_frame != nullptr) return *impl_->final_frame;
  if (impl_->was_cancelled) {
    throw Error("query cancelled before completion",
                ErrorCategory::kCancelled);
  }
  // No error, no cancel, no final state: the engine's stream ended dry
  // (e.g. the progressive baseline over a zero-partition table).
  throw Error("query produced no final state");
}

bool QueryHandle::done() const {
  return impl_->done.load(std::memory_order_acquire);
}

bool QueryHandle::cancelled() const {
  return impl_->cancel_requested.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// PreparedQuery
// ---------------------------------------------------------------------------

QueryHandle PreparedQuery::Run(RunOptions options) const {
  auto impl = std::make_shared<QueryHandle::Impl>();
  impl->db = db_;
  impl->plan = plan_.node();
  impl->options = std::move(options);
  if (impl->options.engine == QueryEngine::kOla) {
    WakeOptions wopts;
    wopts.with_ci = impl->options.with_ci;
    wopts.pool = db_->pool();
    // Without a shared pool the session is serial by construction
    // (DbOptions::workers resolved to no pool); keep node bodies serial
    // rather than letting the engine re-derive a pool of its own.
    wopts.workers = 1;
    impl->engine = std::make_unique<WakeEngine>(&db_->catalog(), wopts);
    impl->run = impl->engine->Start(impl->plan);
  }
  impl->driver = std::thread([impl] { impl->Drive(); });
  return QueryHandle(std::move(impl));
}

DataFrame PreparedQuery::Execute(RunOptions options) const {
  return Run(std::move(options)).Final();
}

std::string PreparedQuery::Explain() const {
  return PlanToString(plan_.node());
}

// ---------------------------------------------------------------------------
// Db
// ---------------------------------------------------------------------------

Db::Db(const Catalog* catalog, DbOptions options)
    : catalog_(catalog), options_(options) {
  CheckArg(catalog != nullptr, "null catalog");
  pool_ = ResolveWorkerPool(options_.workers, &owned_pool_);
}

Db::~Db() = default;

PreparedQuery Db::Prepare(const std::string& sql) const {
  return Finish(sql, sql::Parse(sql));
}

PreparedQuery Db::Prepare(const Plan& plan) const {
  CheckPlan(plan.node() != nullptr, "Prepare on empty plan");
  return Finish("", plan);
}

PreparedQuery Db::Finish(std::string sql, Plan plan) const {
  Schema schema;
  try {
    if (options_.optimize) {
      plan = Optimize(plan, *catalog_);
    }
    // Validate now (errors surface at Prepare, not mid-run) and pin the
    // result schema. Optimize() already validates, but the no-optimize
    // path must be just as loud.
    schema = InferProps(plan.node(), *catalog_).schema;
  } catch (const Error& e) {
    // Validation reuses frame/schema helpers whose throws default to
    // kExecution; at Prepare time they are plan errors by definition.
    if (e.category() == ErrorCategory::kExecution) {
      throw Error(e.what(), ErrorCategory::kPlan);
    }
    throw;
  }
  return PreparedQuery(this, std::move(sql), std::move(plan),
                       std::move(schema));
}

}  // namespace wake
