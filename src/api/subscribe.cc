// Standing queries (Db::Subscribe): incremental maintenance of an
// aggregate over a live table.
//
// The invariant that makes this exact rather than approximate: a live
// table's rows have a stable global order (append order), and
// GroupedAggState is deterministic in consume order — folding deltas
// [0,a), [a,b), [b,c) serially leaves byte-identical state to folding
// [0,c) in one pass. So each Refresh() consumes only the rows between
// its watermark and the snapshot's end, and the finalized frame equals
// what the exact engine would produce from scratch over the same
// snapshot.
#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "api/db.h"
#include "common/error.h"
#include "core/agg_state.h"
#include "ingest/live_table.h"
#include "plan/props.h"

namespace wake {

namespace {

// Applies a Filter/Map/SortLimit chain to a materialized frame, exactly
// as the exact engine evaluates those operators.
DataFrame ApplyOps(DataFrame in, const std::vector<PlanNodePtr>& ops) {
  for (const auto& node : ops) {
    switch (node->op) {
      case PlanOp::kFilter:
        in = in.FilterBy(node->predicate->Eval(in));
        break;
      case PlanOp::kMap: {
        DataFrame out;
        if (node->append_input) out = in;
        for (const auto& p : node->projections) {
          Column c = p.expr->Eval(in);
          out.AddColumn(Field(p.name, c.type()), std::move(c));
        }
        in = std::move(out);
        break;
      }
      case PlanOp::kSortLimit: {
        DataFrame sorted = in.SortBy(node->sort_keys);
        in = node->limit > 0 ? sorted.Head(node->limit) : std::move(sorted);
        break;
      }
      default:
        throw Error("unsupported operator in standing query",
                    ErrorCategory::kPlan);
    }
  }
  return in;
}

}  // namespace

struct Subscription::Impl {
  std::shared_ptr<LiveTable> live;
  PlanNodePtr scan;
  std::vector<PlanNodePtr> pre_ops;   // scan → aggregate input, in order
  PlanNodePtr agg;
  std::vector<PlanNodePtr> post_ops;  // aggregate output → root, in order
  Schema output_schema;
  SubscribeOptions options;

  mutable std::mutex mu;
  std::unique_ptr<GroupedAggState> state;  // persistent, serial
  bool primed = false;     // watermark initialized from the first snapshot
  uint64_t watermark = 0;  // rows below this global index are folded in
  bool emitted = false;
  SubscriptionState last;
  std::exception_ptr poll_error;

  std::thread poller;
  std::mutex stop_mu;
  std::condition_variable stop_cv;
  bool stop = false;

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(stop_mu);
      stop = true;
    }
    stop_cv.notify_all();
    if (poller.joinable()) poller.join();
  }

  /// An empty frame with the scan's output columns, the seed deltas
  /// append onto.
  DataFrame EmptyScanFrame() const {
    const Schema& full = live->schema();
    if (scan->columns.empty()) return DataFrame(full);
    std::vector<Field> fields;
    fields.reserve(scan->columns.size());
    for (const auto& name : scan->columns) {
      fields.push_back(full.field(full.FieldIndex(name)));
    }
    return DataFrame(Schema(std::move(fields)));
  }

  std::optional<SubscriptionState> RefreshLocked() {
    const LiveSnapshot snap = live->SnapshotInfo();
    if (!primed) {
      watermark = snap.start_row;
      primed = true;
    }
    if (snap.start_row > watermark) {
      throw Error(
          "subscription on '" + live->name() + "' lost rows [" +
              std::to_string(watermark) + ", " +
              std::to_string(snap.start_row) +
              ") to retention before folding them; raise retain_tablets "
              "or refresh more often",
          ErrorCategory::kResourceExhausted);
    }
    if (emitted && snap.end_row == watermark) {
      if (snap.epoch == last.epoch) return std::nullopt;
      last.epoch = snap.epoch;  // seal/evict with no new rows: same data
      return last;
    }

    // Assemble the delta [watermark, end_row) in global row order. Whole
    // tablets go through the filtered materialize (block skipping); a
    // tablet straddling the watermark is materialized unfiltered so row
    // offsets stay addressable, then sliced. The residual Filter in
    // pre_ops removes non-matching rows either way.
    DataFrame delta = EmptyScanFrame();
    for (const auto& t : snap.tablets) {
      if (t.start_row + t.rows <= watermark) continue;
      if (t.start_row >= watermark) {
        delta.Append(t.table->Materialize(scan->columns, scan->scan_filter));
      } else {
        DataFrame full = t.table->Materialize(scan->columns, nullptr);
        delta.Append(full.Slice(static_cast<size_t>(watermark - t.start_row),
                                full.num_rows()));
      }
    }
    watermark = snap.end_row;

    if (delta.num_rows() > 0) {
      DataFrame in = ApplyOps(std::move(delta), pre_ops);
      if (state == nullptr) {
        Schema agg_out = AggOutputSchema(in.schema(), agg->group_by, agg->aggs);
        state = std::make_unique<GroupedAggState>(agg->group_by, agg->aggs,
                                                  in.schema(),
                                                  std::move(agg_out));
      }
      state->Consume(in);
    }

    DataFrame out = state != nullptr
                        ? ApplyOps(state->Finalize(AggScaling{}).frame,
                                   post_ops)
                        : DataFrame(output_schema);  // nothing ingested yet
    last.epoch = snap.epoch;
    last.rows_covered = snap.end_row;
    last.frame = std::make_shared<DataFrame>(std::move(out));
    emitted = true;
    return last;
  }

  std::optional<SubscriptionState> Refresh() {
    std::optional<SubscriptionState> emittedState;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (poll_error != nullptr) std::rethrow_exception(poll_error);
      emittedState = RefreshLocked();
    }
    if (emittedState && options.on_state) options.on_state(*emittedState);
    return emittedState;
  }

  void PollLoop() {
    std::unique_lock<std::mutex> lock(stop_mu);
    while (!stop) {
      stop_cv.wait_for(lock, std::chrono::milliseconds(options.poll_ms),
                       [this] { return stop; });
      if (stop) break;
      lock.unlock();
      try {
        Refresh();
      } catch (...) {
        // Park the error for the owner's next Refresh()/Current() and
        // stop polling: the state can no longer advance consistently.
        std::lock_guard<std::mutex> elock(mu);
        poll_error = std::current_exception();
        lock.lock();
        break;
      }
      lock.lock();
    }
  }
};

Subscription::Subscription(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

Subscription::~Subscription() = default;

std::optional<SubscriptionState> Subscription::Refresh() {
  return impl_->Refresh();
}

SubscriptionState Subscription::Current() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->poll_error != nullptr) std::rethrow_exception(impl_->poll_error);
  return impl_->last;
}

const Schema& Subscription::schema() const { return impl_->output_schema; }

std::unique_ptr<Subscription> Db::Subscribe(const std::string& sql,
                                            SubscribeOptions options) const {
  PreparedQuery q = Prepare(sql);
  return Subscribe(Plan(q.plan().node()), std::move(options));
}

std::unique_ptr<Subscription> Db::Subscribe(const Plan& plan,
                                            SubscribeOptions options) const {
  PreparedQuery q = Prepare(plan);

  auto impl = std::make_unique<Subscription::Impl>();
  impl->output_schema = q.schema();
  impl->options = std::move(options);

  // Decompose the optimized plan: [post_ops] over one kAggregate over
  // [pre_ops] over one kScan of a live table.
  PlanNodePtr n = q.plan().node();
  std::vector<PlanNodePtr> post;
  while (n != nullptr &&
         (n->op == PlanOp::kMap || n->op == PlanOp::kSortLimit)) {
    post.push_back(n);
    n = n->inputs.empty() ? nullptr : n->inputs[0];
  }
  CheckPlan(n != nullptr && n->op == PlanOp::kAggregate,
            "standing queries require a single aggregate "
            "(optionally under Map/SortLimit)");
  impl->agg = n;
  n = n->inputs[0];
  std::vector<PlanNodePtr> pre;
  while (n != nullptr && (n->op == PlanOp::kFilter || n->op == PlanOp::kMap)) {
    pre.push_back(n);
    n = n->inputs.empty() ? nullptr : n->inputs[0];
  }
  CheckPlan(n != nullptr && n->op == PlanOp::kScan,
            "standing queries read one table: aggregate input must be a "
            "Filter/Map chain over a single scan");
  impl->scan = n;
  // Chains were collected top-down; evaluation runs bottom-up.
  std::reverse(pre.begin(), pre.end());
  std::reverse(post.begin(), post.end());
  impl->pre_ops = std::move(pre);
  impl->post_ops = std::move(post);

  auto dyn = catalog_->GetDynamic(impl->scan->table);
  CheckPlan(dyn != nullptr,
            "standing queries require a live table; '" + impl->scan->table +
                "' is static");
  impl->live = std::dynamic_pointer_cast<LiveTable>(dyn);
  CheckPlan(impl->live != nullptr,
            "dynamic table '" + impl->scan->table +
                "' does not support subscriptions");

  if (impl->options.poll_ms > 0) {
    impl->poller = std::thread([p = impl.get()] { p->PollLoop(); });
  }
  return std::unique_ptr<Subscription>(new Subscription(std::move(impl)));
}

}  // namespace wake
