// wake::Db — the unified session API over every engine in this repo.
//
// Before this facade existed, callers hand-wired parse -> optimize ->
// compile against three disjoint blocking entry points (WakeEngine +
// callback, ExactEngine, ProgressiveOla). Db collapses them into the
// session shape a progressive middleware exposes to clients
// (ProgressiveDB, Berg et al., VLDB'19): prepared statements, a
// pull-based stream of converging states, cancellation, and concurrent
// execution over one shared worker pool.
//
//   Db db(&catalog);
//   PreparedQuery q = db.Prepare(
//       "SELECT l_shipmode, SUM(l_quantity) AS qty "
//       "FROM lineitem GROUP BY l_shipmode");      // parse + optimize once
//   QueryHandle h = q.Run();                       // non-blocking
//   while (auto s = h.Next()) {                    // pull converging states
//     render(*s->frame, s->progress);
//   }
//   DataFrame exact = h.Final();                   // the exact answer
//
// Engine selection is per run: RunOptions::engine picks the Wake OLA
// engine (kOla, streaming states), the blocking exact baseline (kExact,
// one final state), or the ProgressiveDB-style middleware baseline
// (kProgressive, single-table re-execution). Results through this API are
// byte-identical to driving the underlying engines directly, at any
// worker count.
//
// Threading / lifetime contract (details in src/api/README.md):
//  - Db is immutable after construction and safe to share across threads;
//    any number of QueryHandles may run concurrently against one Db, all
//    sharing its worker pool.
//  - PreparedQuery is an immutable value (copyable); Run() may be called
//    repeatedly and concurrently. Db must outlive its PreparedQuerys and
//    QueryHandles.
//  - QueryHandle owns the running query. Next()/Wait()/Final() may be
//    called from any one consumer thread; Cancel() from any thread.
//    Destroying a handle cancels the query (if still running) and joins
//    every thread it spawned — no detached work survives a handle.
//  - Cancel() is cooperative: node threads unwind at the next partial /
//    chunk / operator boundary, so shutdown latency is bounded by one
//    unit of work, never by the rest of the query.
#ifndef WAKE_API_DB_H_
#define WAKE_API_DB_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/resource.h"
#include "core/engine.h"
#include "plan/plan.h"
#include "storage/partitioned_table.h"

namespace wake {

class Db;
class PreparedQuery;

/// Which engine executes a prepared query (RunOptions::engine).
enum class QueryEngine : uint8_t {
  kOla,          // Wake pipelined OLA: streaming converging states
  kExact,        // blocking exact baseline: one final state
  kProgressive,  // ProgressiveDB-style middleware (single-table plans)
};

/// Session-wide configuration.
struct DbOptions {
  /// Worker pool shared by all queries of this Db: 0 = process-wide pool
  /// (WAKE_WORKERS, default hardware concurrency), 1 = serial operator
  /// bodies, N > 1 = a Db-owned pool of N workers. Results are
  /// byte-identical across settings.
  size_t workers = 0;
  /// Run the logical optimizer in Prepare(). Off = naive plans (mostly
  /// useful for plan-shape debugging; results are identical either way).
  bool optimize = true;
  /// Admission control: at most this many queries execute at once; excess
  /// runs queue FIFO. 0 = unlimited (no admission gate).
  size_t max_concurrent_queries = 0;
  /// Queue depth behind the admission gate. A Run() that finds the queue
  /// at capacity throws wake::Error(kQueueFull) synchronously. Only
  /// meaningful when max_concurrent_queries > 0; 0 = reject immediately
  /// when every slot is busy.
  size_t max_queued = 16;
  /// Session-wide memory budget shared by every concurrent query's
  /// tracker. A query whose charge tips the session over the limit
  /// breaches with BreachReason::kSessionMemory (its own RunOptions
  /// breach policy decides degrade vs fail). 0 = unlimited.
  size_t total_memory_limit_bytes = 0;
};

/// What to do when a running query crosses its budget
/// (RunOptions::on_breach).
enum class OnBreach : uint8_t {
  /// Stop requesting more data, drain in-flight partials, and return the
  /// last converging snapshot as a ResultStatus::kPartialBudget result —
  /// estimate semantics, CI included. This is what makes a budgeted OLA
  /// query *degrade* instead of fail; the blocking exact engine cannot
  /// degrade (there is no partial to return) and fails regardless.
  kDegrade,
  /// Cancel the run and surface wake::Error(kResourceExhausted).
  kFail,
};

/// How a finished run's result should be interpreted.
enum class ResultStatus : uint8_t {
  kFinal,          // exact answer over the full input
  kPartialBudget,  // budget breach: last estimate over a prefix of the data
};

/// Terminal result with provenance (QueryHandle::Result()).
struct QueryResult {
  DataFramePtr frame;
  ResultStatus status = ResultStatus::kFinal;
  /// Which limit ended the run early (kNone when status == kFinal).
  BreachReason breach = BreachReason::kNone;
  /// Fraction of the base-table input processed when the run ended; 1.0
  /// for kFinal results.
  double progress = 1.0;
  /// Per-column variances of the snapshot (CI runs on refresh roots).
  std::shared_ptr<const VarianceMap> variances;
};

/// Per-run configuration.
struct RunOptions {
  QueryEngine engine = QueryEngine::kOla;
  /// Propagate variances and report them with refresh-mode states
  /// (kOla only).
  bool with_ci = false;
  /// Optional push subscription: invoked on the handle's driver thread
  /// for every state (including the final one). Pull via Next() and the
  /// callback can be used together; both see every state.
  StateCallback on_state;

  // -- Resource budget (zero = unlimited) --------------------------------
  /// Cap on materialized bytes attributed to this query: queued partials,
  /// join build tables, aggregation accumulators (approximate, see
  /// common/resource.h).
  size_t memory_limit_bytes = 0;
  /// Wall-clock deadline, measured from Run() — time spent waiting in the
  /// admission queue counts against it.
  int64_t timeout_ms = 0;
  /// Cap on base-table rows read across all scans of the run.
  size_t max_rows_scanned = 0;
  /// Breach policy. kDegrade (default) turns a breached OLA/progressive
  /// run into a kPartialBudget result; kFail cancels and raises
  /// kResourceExhausted. kExact runs fail on breach under either policy.
  OnBreach on_breach = OnBreach::kDegrade;

  /// Cap on snapshots buffered in the handle's pull stream. When the
  /// consumer falls behind, the *oldest* queued snapshot is dropped —
  /// snapshots are cumulative, so Next() skips ahead to fresher estimates
  /// and Final()/Wait()-only consumers cost O(cap) memory instead of one
  /// frame per emitted state. 0 = unbounded (every state delivered).
  size_t max_buffered_states = 0;

  /// How long Run() may wait in the admission queue before failing with
  /// wake::Error(kAdmissionTimeout). 0 = wait indefinitely. Only
  /// meaningful on a Db with max_concurrent_queries > 0.
  int64_t admission_timeout_ms = 0;
};

/// A live, possibly still running query. Move-only RAII handle: the
/// destructor cancels (if needed) and joins everything.
class QueryHandle {
 public:
  ~QueryHandle();
  QueryHandle(QueryHandle&&) noexcept;
  QueryHandle& operator=(QueryHandle&&) = delete;

  /// Pulls the next state, blocking until one arrives or the stream ends.
  /// Returns std::nullopt once no more states will arrive (completion,
  /// cancellation, or error). States arrive in order; the last state of a
  /// successful run has is_final = true.
  std::optional<OlaState> Next();

  /// Like Next() but waits at most `timeout`; std::nullopt also means
  /// timeout — check done() to tell the stream apart from a slow query.
  std::optional<OlaState> Next(std::chrono::milliseconds timeout);

  /// Requests cooperative cancellation. Non-blocking, idempotent, safe
  /// from any thread. A cancel that races normal completion is a no-op
  /// (the final result stays available).
  void Cancel();

  /// Blocks until the query is finished (final state, cancelled, or
  /// failed) and every thread of the run is joined. Does not throw.
  void Wait();

  /// Wait(), then return the final result frame. For a budgeted run that
  /// breached under OnBreach::kDegrade this is the last emitted snapshot
  /// (use Result() to see the status and breach reason). Throws the
  /// query's error if it failed, or wake::Error(kCancelled) if it was
  /// cancelled before producing a final state.
  DataFrame Final();

  /// Wait(), then return the terminal result with provenance: the frame
  /// plus whether it is exact (kFinal) or a budget-breach estimate
  /// (kPartialBudget, with breach reason and fraction of data processed).
  /// Throws under exactly the same conditions as Final().
  QueryResult Result();

  /// True once the run is finished and its threads are joined or
  /// joinable without blocking (final, cancelled, or failed).
  bool done() const;

  /// True once Cancel() has been requested.
  bool cancelled() const;

 private:
  friend class PreparedQuery;
  struct Impl;
  explicit QueryHandle(std::shared_ptr<Impl> impl);
  std::shared_ptr<Impl> impl_;
};

/// A parsed, optimized, reusable query. Cheap to copy (shares the plan).
class PreparedQuery {
 public:
  /// Starts a run and returns immediately. Any number of runs of the
  /// same PreparedQuery may be in flight at once.
  QueryHandle Run(RunOptions options = {}) const;

  /// Blocking convenience: Run(options).Final().
  DataFrame Execute(RunOptions options = {}) const;

  /// The optimized plan, rendered for humans.
  std::string Explain() const;

  /// Output schema of the query result.
  const Schema& schema() const { return schema_; }

  const Plan& plan() const { return plan_; }

  /// Original SQL text (empty when prepared from a Plan).
  const std::string& sql() const { return sql_; }

 private:
  friend class Db;
  PreparedQuery(const Db* db, std::string sql, Plan plan, Schema schema)
      : db_(db),
        sql_(std::move(sql)),
        plan_(std::move(plan)),
        schema_(std::move(schema)) {}

  const Db* db_;
  std::string sql_;
  Plan plan_;
  Schema schema_;
};

/// One incrementally maintained snapshot of a standing query.
struct SubscriptionState {
  /// Live-table epoch the snapshot covers. A state at epoch E is
  /// byte-identical to a from-scratch exact query over exactly the
  /// tablet set of that epoch's snapshot.
  uint64_t epoch = 0;
  /// Global row watermark: the snapshot aggregates exactly the live
  /// table's rows below this index (minus any pre-subscription evicted
  /// prefix).
  uint64_t rows_covered = 0;
  DataFramePtr frame;
};

/// Configuration for Db::Subscribe.
struct SubscribeOptions {
  /// Poll interval of the subscription's background refresher thread;
  /// 0 = no thread, the owner drives Refresh() manually.
  int64_t poll_ms = 0;
  /// Invoked for every emitted state, on whichever thread produced it
  /// (the poll thread, or the caller of Refresh()).
  std::function<void(const SubscriptionState&)> on_state;
};

/// A standing query over a live table (Db::Subscribe): a long-lived
/// handle whose result is maintained *incrementally*. Each Refresh()
/// takes one consistent live-table snapshot, folds only the rows
/// appended since the previous refresh into a persistent aggregate
/// state (the same ⊕ contract OLA partials merge through), finalizes,
/// and emits an epoch-stamped state — old tablets are never re-scanned
/// and per-snapshot cost is O(delta + groups), not O(data).
///
/// Supported plan shape: an optional Map/SortLimit chain over one
/// aggregate whose input is a Filter/Map chain over a single scan of a
/// live table; anything else is rejected at Subscribe with kPlan.
///
/// Thread safety: Refresh()/Current() are safe from any thread. The
/// destructor stops and joins the poll thread, if any. If retention
/// evicts rows the subscription has not folded yet, Refresh() throws
/// kResourceExhausted (the incremental state can no longer be made
/// consistent) — size retain_tablets to outlast the refresh cadence.
class Subscription {
 public:
  ~Subscription();
  Subscription(const Subscription&) = delete;
  Subscription& operator=(const Subscription&) = delete;

  /// Folds rows appended since the last refresh and emits a new state.
  /// Returns std::nullopt when the live table is unchanged.
  std::optional<SubscriptionState> Refresh();

  /// Latest emitted state (frame is null before the first Refresh()).
  SubscriptionState Current() const;

  /// Output schema of emitted frames.
  const Schema& schema() const;

 private:
  friend class Db;
  struct Impl;
  explicit Subscription(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// A database session: catalog + worker pool + prepared queries.
class Db {
 public:
  explicit Db(const Catalog* catalog, DbOptions options = {});
  ~Db();

  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  /// Parses and optimizes `sql` once. Errors carry a category: kParse
  /// (with position) for rejected SQL, kPlan for validation failures.
  PreparedQuery Prepare(const std::string& sql) const;

  /// Prepares a programmatically built plan (optimized under the same
  /// DbOptions::optimize switch).
  PreparedQuery Prepare(const Plan& plan) const;

  /// Registers a standing query over a live table (see Subscription).
  /// Throws kPlan if the plan shape is unsupported or the scanned table
  /// is not dynamic. The Db must outlive the returned handle.
  std::unique_ptr<Subscription> Subscribe(const std::string& sql,
                                          SubscribeOptions options = {}) const;
  std::unique_ptr<Subscription> Subscribe(const Plan& plan,
                                          SubscribeOptions options = {}) const;

  const Catalog& catalog() const { return *catalog_; }
  const DbOptions& options() const { return options_; }

  /// The shared worker pool (null = serial operator bodies).
  WorkerPool* pool() const { return pool_; }

  /// Admission gate (null when max_concurrent_queries == 0).
  AdmissionController* admission() const { return admission_.get(); }

  /// Session-wide memory meter (null when total_memory_limit_bytes == 0);
  /// parent of every budgeted query tracker.
  ResourceTracker* session_tracker() const { return session_tracker_.get(); }

 private:
  PreparedQuery Finish(std::string sql, Plan plan) const;

  const Catalog* catalog_;
  DbOptions options_;
  std::unique_ptr<WorkerPool> owned_pool_;
  WorkerPool* pool_ = nullptr;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<ResourceTracker> session_tracker_;
};

}  // namespace wake

#endif  // WAKE_API_DB_H_
